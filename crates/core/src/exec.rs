//! SC-execution enumeration — the streaming checker pipeline.
//!
//! The enumerator walks an explicit interleaving tree with a **single
//! mutable [`SearchState`]** and an undo journal: each step pushes its
//! effects (thread state, memory, events, relation edges) and pops them
//! on backtrack. Completed executions are fed, one at a time, to an
//! [`ExecutionVisitor`] — nothing is materialized on the default path.
//! The resulting [`Execution`]s carry the relations Herd models are
//! phrased over (`po`, `rf`, `co`, `fr`, dependency relations), ready
//! for the race detectors in [`crate::races`].
//!
//! Three layers compose:
//!
//! 1. [`visit_sc`] — the streaming DFS itself, with incremental relation
//!    maintenance (extend `po`/`co`/`rf`/`fr` on push, retract on pop).
//! 2. [`Reduction::SleepSet`] — sound partial-order reduction: two
//!    pending steps commute when they touch different locations or are
//!    both reads, so only one order of each commuting pair is explored;
//!    skipped subtrees are counted in [`EnumStats::pruned`].
//! 3. [`visit_sc_sharded`] — the top levels of the tree are split into
//!    independent shard jobs run on a thread pool (same discipline as
//!    `hsim_sys::run_matrix`: atomic job index, results merged in shard
//!    order, serial fallback). The shard set is independent of the
//!    thread count, so explored/pruned counts and visitor results are
//!    byte-identical at any `--threads`.
//!
//! [`enumerate_sc`] / [`enumerate_sc_quantum`] survive as collect()
//! visitors over the exhaustive (unreduced) walk — the materializing
//! reference the differential tests compare against.
//!
//! When a *quantum domain* is supplied (the quantum transformation of
//! §3.4.3), quantum loads do not read memory: they are replaced by a
//! conceptual `random()` that is enumerated over the domain, and quantum
//! RMWs degrade to quantum stores. This produces executions of the
//! *quantum-equivalent program* P<sub>q</sub>.

use crate::classes::OpClass;
use crate::program::{Expr, Instr, Loc, Program, Reg, Value};
use crate::relation::Relation;
use crate::resilience::{Budget, EngineId, ExhaustReason, Fault, FaultPlan, RunStatus};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Kind of dynamic memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An atomic read-modify-write (reads and writes in one event,
    /// per the paper's footnote 1).
    Rmw,
}

impl Access {
    /// Does the event read memory?
    pub fn reads(self) -> bool {
        matches!(self, Access::Read | Access::Rmw)
    }

    /// Does the event write memory?
    pub fn writes(self) -> bool {
        matches!(self, Access::Write | Access::Rmw)
    }
}

/// The write function an event applies to its location, used to decide
/// pairwise commutativity (paper §3.2.3: two writes commute iff
/// performing them in either order yields the same final value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFn {
    /// Overwrite with a constant (plain store / exchange).
    Set(Value),
    /// `old + k` (fetch_add / fetch_sub with negated operand).
    Add(Value),
    /// `old & k`.
    And(Value),
    /// `old | k`.
    Or(Value),
    /// `old ^ k`.
    Xor(Value),
    /// `min(old, k)`.
    Min(Value),
    /// `max(old, k)`.
    Max(Value),
    /// Compare-and-swap — order-sensitive in general.
    Cas,
}

impl WriteFn {
    /// Exact pairwise commutativity for the function families litmus
    /// programs use. `f.commutes_with(g)` iff `f∘g == g∘f` on all
    /// values.
    pub fn commutes_with(self, other: WriteFn) -> bool {
        use WriteFn::*;
        match (self, other) {
            (Add(_), Add(_)) => true,
            (And(_), And(_)) => true,
            (Or(_), Or(_)) => true,
            (Xor(_), Xor(_)) => true,
            (Min(_), Min(_)) => true,
            (Max(_), Max(_)) => true,
            // Two overwrites commute only when they write the same value.
            (Set(a), Set(b)) => a == b,
            // Idempotent-compatible mixed cases are deliberately not
            // special-cased; CAS is order-sensitive.
            _ => false,
        }
    }
}

/// A dynamic memory event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dense event id, indexing the execution's relations.
    pub id: usize,
    /// Issuing thread.
    pub tid: usize,
    /// Index of the instruction within the thread.
    pub iid: usize,
    /// Annotated class.
    pub class: OpClass,
    /// Accessed location.
    pub loc: Loc,
    /// Read/write/RMW.
    pub access: Access,
    /// Value read (reads and RMWs).
    pub rval: Option<Value>,
    /// Value written (writes and RMWs).
    pub wval: Option<Value>,
    /// Write function for commutativity analysis (writes and RMWs).
    pub write_fn: Option<WriteFn>,
}

/// The "result" of an execution (paper §3.2.2: the memory state at the
/// end of the execution; register files are kept as well for
/// litmus-style assertions and for comparing against the relaxed
/// machine).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExecResult {
    /// Final value of every location.
    pub memory: BTreeMap<Loc, Value>,
    /// Final register file of every thread.
    pub regs: Vec<BTreeMap<Reg, Value>>,
}

/// One SC execution with its relations.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Dynamic events, indexed by id.
    pub events: Vec<Event>,
    /// Event ids in SC total order `T`.
    pub order: Vec<usize>,
    /// Final memory + registers.
    pub result: ExecResult,
    /// Program order (transitive).
    pub po: Relation,
    /// Reads-from: source write → read.
    pub rf: Relation,
    /// Coherence order: earlier write → later write, same location
    /// (transitive).
    pub co: Relation,
    /// From-read: read → write co-after the read's source.
    pub fr: Relation,
    /// Data dependency: load/RMW → event using its value.
    pub data_dep: Relation,
    /// Address dependency (always empty for static-address litmus
    /// programs; present for Herd parity).
    pub addr_dep: Relation,
    /// Control dependency: load/RMW → memory event after a dependent
    /// branch.
    pub ctrl_dep: Relation,
    /// Events whose loaded value is observed via [`Instr::Observe`].
    pub observed: Vec<bool>,
    /// Barrier release watermarks: one entry per released block
    /// [`Instr::Barrier`] rendezvous, holding the event count at the
    /// moment of release. Every event with `id < cut` is
    /// synchronized-before every event with `id >= cut` — the pipeline
    /// requires every thread to execute the same number of barriers, so
    /// each release is a full rendezvous of all threads.
    pub barrier_cuts: Vec<usize>,
}

impl Execution {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Herd's `(addr | data | ctrl)` observability relation, extended
    /// with [`Instr::Observe`] sinks encoded as self-loops removed; use
    /// [`Execution::value_observed`] for the flag.
    pub fn obs_dep(&self) -> Relation {
        self.addr_dep.union(&self.data_dep).union(&self.ctrl_dep)
    }

    /// Is the value loaded by event `e` used by another instruction in
    /// its thread (dependency into a later access, or an explicit
    /// observe marker)?
    pub fn value_observed(&self, e: usize) -> bool {
        if self.observed[e] {
            return true;
        }
        let n = self.events.len();
        (0..n).any(|j| self.data_dep.contains(e, j) || self.addr_dep.contains(e, j))
    }

    /// The communication relation `rf | fr | co`.
    pub fn com(&self) -> Relation {
        self.rf.union(&self.fr).union(&self.co)
    }

    /// Events of a class, as a membership vector (for
    /// [`Relation::product`]).
    pub fn class_set(&self, pred: impl Fn(&Event) -> bool) -> Vec<bool> {
        self.events.iter().map(pred).collect()
    }
}

/// Limits and options for enumeration.
#[derive(Debug, Clone)]
pub struct EnumLimits {
    /// Abort after this many complete executions.
    pub max_executions: usize,
    /// Values a quantum `random()` may take, when enumerating the
    /// quantum-equivalent program. Ignored by [`enumerate_sc`]; used by
    /// [`enumerate_sc_quantum`].
    pub quantum_domain: Vec<Value>,
    /// Optional shared resource budget (wall-clock deadline, cancel
    /// flag, approximate memory high-water), polled amortized in the
    /// DFS hot loop — every [`BUDGET_POLL_INTERVAL`] tree nodes, so the
    /// default `None` costs one branch per node.
    pub budget: Option<Arc<Budget>>,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits { max_executions: 250_000, quantum_domain: vec![0, 1, JUNK], budget: None }
    }
}

/// A recognizable "could be anything" value for quantum randomness.
pub const JUNK: Value = 0x0BAD_F00D;

/// Enumeration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumError {
    /// The execution count exceeded [`EnumLimits::max_executions`].
    TooManyExecutions {
        /// The configured limit.
        limit: usize,
    },
    /// The wall-clock deadline of [`EnumLimits::budget`] expired.
    DeadlineExpired,
    /// The budget's cancel flag was set (by a watchdog or the caller).
    Cancelled,
    /// The enumeration's approximate memory high-water (undo journal
    /// plus memo table) passed the budget's cap.
    MemoryExhausted {
        /// The configured cap in bytes.
        limit: usize,
    },
}

impl EnumError {
    /// The structured exhaustion reason, for
    /// [`RunStatus::Inconclusive`] reports.
    pub fn exhaust_reason(&self) -> ExhaustReason {
        match *self {
            EnumError::TooManyExecutions { limit } => ExhaustReason::Executions { limit },
            EnumError::DeadlineExpired => ExhaustReason::Deadline,
            EnumError::Cancelled => ExhaustReason::Cancelled,
            EnumError::MemoryExhausted { limit } => ExhaustReason::Memory { limit },
        }
    }
}

impl From<ExhaustReason> for EnumError {
    fn from(r: ExhaustReason) -> EnumError {
        match r {
            ExhaustReason::Executions { limit } => EnumError::TooManyExecutions { limit },
            ExhaustReason::Deadline => EnumError::DeadlineExpired,
            ExhaustReason::Cancelled => EnumError::Cancelled,
            ExhaustReason::Memory { limit } => EnumError::MemoryExhausted { limit },
        }
    }
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::TooManyExecutions { limit } => {
                write!(
                    f,
                    "more than {limit} SC executions; raise the limit with \
                     `drfrlx check --max-execs N` (EnumLimits::max_executions)"
                )
            }
            EnumError::DeadlineExpired => {
                write!(f, "wall-clock deadline expired before enumeration finished")
            }
            EnumError::Cancelled => write!(f, "enumeration cancelled"),
            EnumError::MemoryExhausted { limit } => {
                write!(f, "enumeration memory high-water passed {limit} bytes")
            }
        }
    }
}

impl std::error::Error for EnumError {}

/// A streaming consumer of completed SC executions.
///
/// The enumerator calls [`ExecutionVisitor::visit`] once per completed
/// execution, in DFS order, passing a borrowed `Execution` that is torn
/// down when the call returns. Return `false` to stop the enumeration
/// (or, under sharding, the current shard) early — e.g. a race checker
/// whose verdict can no longer change.
pub trait ExecutionVisitor {
    /// Consume one execution; `false` stops the (shard's) enumeration.
    fn visit(&mut self, e: &Execution) -> bool;
}

/// Search-space pruning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Visit every SC interleaving — the materializing-era reference
    /// behavior, kept for differential testing.
    Exhaustive,
    /// Sleep-set partial-order reduction: of two adjacent steps that
    /// touch different locations or are both reads, only one order is
    /// explored. Sound for race verdicts, race kinds and final-memory
    /// result sets (see DESIGN.md "Checker pipeline").
    SleepSet,
    /// Sleep sets plus duplicate-state memoization: a canonical
    /// fingerprint of the search state is kept in an open-addressing
    /// visited table, and a subtree is skipped when an equivalent state
    /// was already explored under a no-more-restrictive sleep set
    /// (Godefroid's state-caching rule). The fingerprint is
    /// *checker-grade*: it abstracts dead registers and (when the
    /// program uses no acquire/release/non-ordering atomics) collapses
    /// coherence orders the race detectors cannot distinguish, so
    /// verdicts and race keys are preserved but per-execution
    /// observables (e.g. which witness is reported first) may differ
    /// from [`Reduction::SleepSet`]. See DESIGN.md "Checker pipeline".
    SleepSetMemo,
}

/// Explored/pruned counts from one enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Complete executions handed to the visitor.
    pub explored: usize,
    /// Subtrees skipped by partial-order reduction (count of pruned
    /// scheduling choices, not of executions under them).
    pub pruned: usize,
    /// Subtrees skipped because an equivalent state had already been
    /// explored ([`Reduction::SleepSetMemo`] only).
    pub memo_pruned: usize,
    /// Peak occupancy of the memoization table (max across shards).
    pub table_peak: usize,
}

impl EnumStats {
    /// Accumulate another enumeration's counts.
    pub fn absorb(&mut self, other: EnumStats) {
        self.explored += other.explored;
        self.pruned += other.pruned;
        self.memo_pruned += other.memo_pruned;
        self.table_peak = self.table_peak.max(other.table_peak);
    }
}

/// Enumerate all SC executions of `p`.
///
/// Equivalent to [`visit_sc`] with [`Reduction::Exhaustive`] and a
/// collecting visitor — the materializing reference path.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] if the interleaving count
/// exceeds the limit.
pub fn enumerate_sc(p: &Program, limits: &EnumLimits) -> Result<Vec<Execution>, EnumError> {
    let mut c = Collect::default();
    visit_sc(p, limits, false, Reduction::Exhaustive, &mut c)?;
    Ok(c.0)
}

/// Enumerate all SC executions of the *quantum-equivalent program*
/// P<sub>q</sub> of `p` (paper §3.4.3): quantum loads return every value
/// in [`EnumLimits::quantum_domain`], quantum stores/RMWs write their
/// computed value but quantum RMW loads are likewise randomized.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] if the execution count
/// exceeds the limit.
pub fn enumerate_sc_quantum(p: &Program, limits: &EnumLimits) -> Result<Vec<Execution>, EnumError> {
    let mut c = Collect::default();
    visit_sc(p, limits, true, Reduction::Exhaustive, &mut c)?;
    Ok(c.0)
}

/// The collecting visitor behind [`enumerate_sc`].
#[derive(Default)]
struct Collect(Vec<Execution>);

impl ExecutionVisitor for Collect {
    fn visit(&mut self, e: &Execution) -> bool {
        self.0.push(e.clone());
        true
    }
}

/// Stream every SC execution of `p` (or of P<sub>q</sub> when
/// `quantum`) to `visitor`, in DFS order.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] if the execution count
/// exceeds the limit.
pub fn visit_sc(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    reduction: Reduction,
    visitor: &mut dyn ExecutionVisitor,
) -> Result<EnumStats, EnumError> {
    let counter = AtomicUsize::new(0);
    let mut eng = Engine::new(p, limits, quantum, reduction, visitor, &counter, None);
    eng.node(0, 0)?;
    Ok(eng.stats)
}

/// Result of a sharded enumeration: per-shard visitors in deterministic
/// shard order, plus aggregate counts.
pub struct ShardedRun<V> {
    /// One `(visitor, stats)` per shard actually merged, in shard
    /// (DFS frontier) order. When early exit cut the run short, shards
    /// past the cutoff are absent.
    pub shards: Vec<(V, EnumStats)>,
    /// Aggregate explored/pruned over the merged shards (frontier-level
    /// pruning included).
    pub stats: EnumStats,
    /// Did the saturation predicate cut the run short?
    pub early_exit: bool,
}

/// Execution budget for the sharding probe: before cutting the tree
/// into shard jobs, the whole tree is walked serially with the real
/// visitor under this cap. Small interleaving trees finish inside the
/// probe and skip sharding entirely — no frontier collection, no
/// snapshot clones, no per-shard visitors; larger trees abandon the
/// probe and shard with a fresh budget.
const PROBE_BUDGET: usize = 512;

/// Bounds for [`shard_target`].
const SHARD_TARGET_MIN: usize = 64;
const SHARD_TARGET_MAX: usize = 256;

/// How many frontier jobs the shard collector aims for: scaled with the
/// program's memory-instruction count (bigger trees benefit from finer
/// load balancing), clamped so the litmus corpus keeps its established
/// shard sets. A function of the program and nothing else — never of
/// the thread count — so the shard set, and therefore the merged result
/// and the explored/pruned split, is identical at any `--threads`.
fn shard_target(p: &Program) -> usize {
    (p.memory_op_count() * 4).clamp(SHARD_TARGET_MIN, SHARD_TARGET_MAX)
}

/// Deepest frontier cut considered.
const SHARD_MAX_DEPTH: usize = 6;

/// Stream executions to per-shard visitors, in parallel.
///
/// A serial probe with the real visitor runs first under a
/// [`PROBE_BUDGET`]-execution cap: small trees complete inside it and
/// that run *is* the result (sharding a 6-interleaving litmus test
/// costs more than enumerating it). Otherwise the top levels of the
/// tree are cut into [`shard_target`]-ish independent jobs (state
/// snapshot + sleep set), collected in DFS order. Workers claim jobs
/// off an atomic index — the same pool discipline as
/// `hsim_sys::run_matrix` — and results merge in shard order. Both the
/// probe decision and the shard set depend only on the program and
/// limits, so the outcome is independent of `threads` and of
/// scheduling.
///
/// `make` creates one fresh visitor per shard; `saturated` inspects a
/// finished shard's visitor and returns `true` when that shard alone
/// proves the final answer can no longer change (e.g. every attainable
/// race kind was found). The merged result is then shards
/// `0..=cutoff`, where `cutoff` is the *smallest* saturating shard
/// index — a deterministic rule: the running cutoff only decreases, so
/// every shard at or below the final cutoff is always run and every
/// shard above it is always discarded.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] when the executions
/// explored across all shards (a shared counter) exceed the limit.
pub fn visit_sc_sharded<V: ExecutionVisitor + Send>(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    reduction: Reduction,
    threads: usize,
    make: &(dyn Fn() -> V + Sync),
    saturated: &(dyn Fn(&V) -> bool + Sync),
) -> Result<ShardedRun<V>, EnumError> {
    // Adaptive fast path: probe the tree serially with a tight budget.
    let probe_budget = PROBE_BUDGET.min(limits.max_executions);
    let probe_limits = EnumLimits {
        max_executions: probe_budget,
        quantum_domain: limits.quantum_domain.clone(),
        budget: limits.budget.clone(),
    };
    let mut probe = make();
    match visit_sc(p, &probe_limits, quantum, reduction, &mut probe) {
        Ok(stats) => {
            let early_exit = saturated(&probe);
            return Ok(ShardedRun { shards: vec![(probe, stats)], stats, early_exit });
        }
        Err(e) => {
            if probe_budget >= limits.max_executions {
                // The probe already ran under the real budget — a
                // genuine too-many-executions failure.
                return Err(e);
            }
            // Tree bigger than the probe: shard it, with a fresh
            // counter (probe work is discarded, not double-counted).
            drop(probe);
        }
    }

    let (shards, frontier_pruned) = collect_frontier(p, limits, quantum, reduction);
    let counter = AtomicUsize::new(0);
    let nshards = shards.len();
    let threads = threads.clamp(1, nshards.max(1));

    let mut merged: Vec<(V, EnumStats)> = Vec::new();
    let mut early_exit = false;
    if threads == 1 {
        for shard in shards {
            let mut v = make();
            let stats = run_shard(p, limits, quantum, reduction, shard, &mut v, &counter)?;
            let sat = saturated(&v);
            merged.push((v, stats));
            if sat {
                early_exit = true;
                break;
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let cutoff = AtomicUsize::new(usize::MAX);
        type Slot<V> = Mutex<Option<Result<(V, EnumStats), EnumError>>>;
        let slots: Vec<Slot<V>> = (0..nshards).map(|_| Mutex::new(None)).collect();
        let shards = &shards;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= nshards {
                        break;
                    }
                    if j > cutoff.load(Ordering::Relaxed) {
                        continue;
                    }
                    let mut v = make();
                    let r = run_shard(
                        p,
                        limits,
                        quantum,
                        reduction,
                        shards[j].clone(),
                        &mut v,
                        &counter,
                    );
                    let r = r.map(|stats| {
                        if saturated(&v) {
                            cutoff.fetch_min(j, Ordering::Relaxed);
                        }
                        (v, stats)
                    });
                    *slots[j].lock().unwrap() = Some(r);
                });
            }
        });
        let cut = cutoff.load(Ordering::Relaxed);
        early_exit = cut != usize::MAX;
        for (j, slot) in slots.into_iter().enumerate() {
            if j > cut {
                break;
            }
            let r = slot.into_inner().unwrap().expect("shards at or below the cutoff always run");
            merged.push(r?);
        }
    }
    let mut stats = EnumStats { pruned: frontier_pruned, ..EnumStats::default() };
    for (_, s) in &merged {
        stats.absorb(*s);
    }
    Ok(ShardedRun { shards: merged, stats, early_exit })
}

/// One frontier job: a search-state snapshot plus the sleep set it was
/// captured under.
#[derive(Clone)]
struct Shard {
    st: SearchState,
    sleep: u64,
}

/// Cut the top of the interleaving tree into shard jobs, deepening the
/// cut until [`shard_target`] jobs exist (or the tree runs out).
/// Returns the jobs in DFS order plus the scheduling choices pruned at
/// frontier levels.
///
/// The cut deepens *incrementally*: each round expands every
/// non-terminal frontier node by one scheduling level from its own
/// snapshot, instead of re-walking the whole tree from the root per
/// depth. Terminal nodes pass through unchanged — exactly what a
/// deeper cut would leave them as — so the resulting shard list and
/// pruned accounting match the restart-per-depth collector.
fn collect_frontier(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    reduction: Reduction,
) -> (Vec<Shard>, usize) {
    let target = shard_target(p);
    let counter = AtomicUsize::new(0);
    let mut pruned = 0;
    // Depth-0 frontier: the root node (post-drain, post quantum-load
    // closure), cut before any scheduling choice.
    let mut shards = {
        let mut sink = Sink;
        let mut eng = Engine::new(p, limits, quantum, reduction, &mut sink, &counter, Some(0));
        eng.node(0, 0).expect("frontier collection emits no executions");
        pruned += eng.stats.pruned;
        std::mem::take(&mut eng.shards)
    };
    for _ in 0..SHARD_MAX_DEPTH {
        if shards.len() >= target {
            break;
        }
        let mut next = Vec::with_capacity(shards.len());
        let mut grew = false;
        for shard in shards {
            if shard_is_terminal(p, &shard.st) {
                next.push(shard);
                continue;
            }
            grew = true;
            let mut sink = Sink;
            let mut eng = Engine::new(p, limits, quantum, reduction, &mut sink, &counter, Some(1));
            eng.st = shard.st;
            eng.node(shard.sleep, 0).expect("frontier collection emits no executions");
            pruned += eng.stats.pruned;
            next.append(&mut eng.shards);
        }
        shards = next;
        if !grew {
            break;
        }
    }
    (shards, pruned)
}

/// Has every thread of the shard's snapshot run to completion?
fn shard_is_terminal(p: &Program, st: &SearchState) -> bool {
    st.threads.iter().enumerate().all(|(tid, t)| t.pc >= p.threads()[tid].instrs.len())
}

/// Visitor for passes that never emit (frontier collection).
struct Sink;

impl ExecutionVisitor for Sink {
    fn visit(&mut self, _e: &Execution) -> bool {
        unreachable!("frontier collection does not complete executions")
    }
}

fn run_shard(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    reduction: Reduction,
    shard: Shard,
    visitor: &mut dyn ExecutionVisitor,
    counter: &AtomicUsize,
) -> Result<EnumStats, EnumError> {
    let mut eng = Engine::new(p, limits, quantum, reduction, visitor, counter, None);
    eng.st = shard.st;
    eng.node(shard.sleep, 0)?;
    Ok(eng.stats)
}

/// Resilience options for [`visit_sc_resilient`]. The default injects
/// nothing, skips nothing and pre-charges nothing — a fresh run.
#[derive(Debug, Clone, Default)]
pub struct ResilienceOptions {
    /// Deterministic fault injection (chaos testing); `None` injects
    /// nothing.
    pub fault_plan: Option<FaultPlan>,
    /// Shard indices a previous (checkpointed) run already completed:
    /// they are skipped here and merged back by the caller. Non-empty
    /// also disables the serial probe — a checkpoint only exists for a
    /// run that sharded.
    pub completed: Vec<usize>,
    /// Executions the completed shards already charged against the
    /// shared execution budget.
    pub completed_explored: usize,
    /// Smallest completed shard index whose visitor saturated, if any
    /// (restores the early-exit cutoff on resume).
    pub completed_cutoff: Option<usize>,
}

impl ResilienceOptions {
    /// Is this a resumed run (some shards already completed)?
    fn resumed(&self) -> bool {
        !self.completed.is_empty() || self.completed_cutoff.is_some()
    }
}

/// Result of a resilient sharded enumeration ([`visit_sc_resilient`]).
pub struct ResilientRun<V> {
    /// `(shard index, visitor, stats)` for every shard completed *by
    /// this run*, in shard-index order. Shards listed in
    /// [`ResilienceOptions::completed`] are not re-run and not listed.
    pub shards: Vec<(usize, V, EnumStats)>,
    /// Aggregate over this run's completed shards, frontier-level
    /// pruning included.
    pub stats: EnumStats,
    /// The frontier-level share of `stats.pruned` (scheduling choices
    /// pruned while cutting the shard plan, not inside any shard) —
    /// what a resuming caller adds exactly once when re-aggregating
    /// checkpointed per-shard stats.
    pub frontier_pruned: usize,
    /// How the run ended. [`RunStatus::Inconclusive`]'s frontier is
    /// the shard indices still to run — the `--resume` work list.
    pub status: RunStatus,
    /// Did the saturation predicate cut the run short?
    pub early_exit: bool,
    /// Size of the deterministic shard plan (1 when the serial probe
    /// finished the whole tree).
    pub total_shards: usize,
}

/// How one shard of a resilient run ended.
enum ShardOut<V> {
    /// Both the work and the saturation check finished.
    Done(V, EnumStats),
    /// Failed (panic or injected fault) on the first try *and* the
    /// retry.
    Lost,
}

/// How long an injected stall waits for the watchdog before giving up
/// on its own — bounds chaos runs that have no deadline configured.
/// Several watchdog poll periods, so a configured deadline is what
/// normally ends the stall.
const STALL_FALLBACK: Duration = Duration::from_millis(25);

/// An injected [`Fault::Stall`]: hold the shard slot until the
/// watchdog cancels the budget (or the fallback window elapses), then
/// return so the attempt is classified as failed — the same
/// classification either way, keeping reports deterministic.
fn stall_until_cancelled(budget: Option<&Budget>) {
    let cap = Instant::now() + STALL_FALLBACK;
    while !budget.is_some_and(Budget::cancelled) && Instant::now() < cap {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// [`visit_sc_sharded`], resilient: panic isolation with one retry,
/// cooperative budgets with a deadline watchdog, deterministic fault
/// injection, and resume over a previous run's completed-shard set.
/// Infallible — exhaustion and lost shards come back as
/// [`RunStatus::Inconclusive`] / [`RunStatus::Degraded`] instead of
/// errors or aborts.
///
/// Each shard runs under `catch_unwind`; a failed shard is retried
/// once, backing off [`Reduction::SleepSetMemo`] to the coarser
/// [`Reduction::SleepSet`], and is reported lost if the retry fails
/// too. A budget trip (shared execution counter, deadline, cancel,
/// memory) stops the run: completed shards are kept — a sound prefix,
/// since every race was found by exploring real executions — and the
/// rest become the resume frontier. The shard plan is the same
/// deterministic, thread-count-independent cut as
/// [`visit_sc_sharded`], which is what makes `completed` indices from
/// a checkpoint meaningful across processes.
#[allow(clippy::too_many_arguments)] // mirrors visit_sc_sharded's signature + resilience
pub fn visit_sc_resilient<V: ExecutionVisitor + Send>(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    reduction: Reduction,
    threads: usize,
    make: &(dyn Fn() -> V + Sync),
    saturated: &(dyn Fn(&V) -> bool + Sync),
    res: &ResilienceOptions,
) -> ResilientRun<V> {
    if !res.resumed() {
        // The same adaptive probe as the non-resilient path. On any
        // failure — tree bigger than the probe budget, a budget trip,
        // even a panic — fall through to the sharded path, which
        // isolates and classifies all three per shard.
        let probe_budget = PROBE_BUDGET.min(limits.max_executions);
        let probe_limits = EnumLimits {
            max_executions: probe_budget,
            quantum_domain: limits.quantum_domain.clone(),
            budget: limits.budget.clone(),
        };
        let mut probe = make();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            visit_sc(p, &probe_limits, quantum, reduction, &mut probe)
        }));
        if let Ok(Ok(stats)) = outcome {
            let early_exit = saturated(&probe);
            return ResilientRun {
                shards: vec![(0, probe, stats)],
                stats,
                frontier_pruned: 0,
                status: RunStatus::Complete,
                early_exit,
                total_shards: 1,
            };
        }
    }

    let (plan, frontier_pruned) = collect_frontier(p, limits, quantum, reduction);
    let nshards = plan.len();
    let threads = threads.clamp(1, nshards.max(1));
    let counter = AtomicUsize::new(res.completed_explored);
    let cutoff = AtomicUsize::new(res.completed_cutoff.unwrap_or(usize::MAX));
    let exhausted: Mutex<Option<ExhaustReason>> = Mutex::new(None);
    let backoff = match reduction {
        Reduction::SleepSetMemo => Reduction::SleepSet,
        r => r,
    };
    let plan = &plan;

    // One shard, first try plus at most one retry. `None` means a
    // global budget trip (reason recorded in `exhausted`) — the shard
    // goes back on the frontier.
    let run_one = |j: usize| -> Option<ShardOut<V>> {
        for attempt in 0..2 {
            if exhausted.lock().unwrap().is_some() {
                return None;
            }
            // Per-shard budget poll: shards small enough to finish
            // between two amortized in-loop polls still observe a
            // deadline or cancellation at the next shard boundary.
            if let Some(b) = &limits.budget {
                if let Err(r) = b.check(0) {
                    let mut g = exhausted.lock().unwrap();
                    if g.is_none() {
                        *g = Some(r);
                    }
                    return None;
                }
            }
            let red = if attempt == 0 { reduction } else { backoff };
            let fault =
                res.fault_plan.as_ref().and_then(|pl| pl.fault_for(EngineId::Checker, j, attempt));
            match fault {
                Some(Fault::Stall) => {
                    stall_until_cancelled(limits.budget.as_deref());
                    continue;
                }
                Some(Fault::Exhaust) => continue,
                _ => {}
            }
            let mut v = make();
            let r = catch_unwind(AssertUnwindSafe(|| {
                if matches!(fault, Some(Fault::Panic)) {
                    panic!("injected fault: checker shard {j} attempt {attempt}");
                }
                run_shard(p, limits, quantum, red, plan[j].clone(), &mut v, &counter)
            }));
            match r {
                Ok(Ok(stats)) => {
                    if saturated(&v) {
                        cutoff.fetch_min(j, Ordering::Relaxed);
                    }
                    return Some(ShardOut::Done(v, stats));
                }
                Ok(Err(e)) => {
                    let mut g = exhausted.lock().unwrap();
                    if g.is_none() {
                        *g = Some(e.exhaust_reason());
                    }
                    return None;
                }
                Err(_) => {} // panicked — retry, or fall out as Lost
            }
        }
        Some(ShardOut::Lost)
    };

    type Slot<V> = Mutex<Option<ShardOut<V>>>;
    let slots: Vec<Slot<V>> = (0..nshards).map(|_| Mutex::new(None)).collect();
    let done = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let claimable = |j: usize| {
        !res.completed.contains(&j)
            && j <= cutoff.load(Ordering::Relaxed)
            && exhausted.lock().unwrap().is_none()
    };
    std::thread::scope(|s| {
        // Deadline watchdog: stalled shards may never reach a poll
        // site, so a sleeping sidecar flips the cancel flag the moment
        // the deadline passes — every poll site and every injected
        // stall then unwinds cooperatively.
        if let Some(b) = limits.budget.clone() {
            if let Some(deadline) = b.deadline() {
                let done = &done;
                s.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let now = Instant::now();
                        if now >= deadline {
                            b.cancel();
                            break;
                        }
                        std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
                    }
                });
            }
        }
        if threads == 1 {
            for (j, slot) in slots.iter().enumerate() {
                if res.completed.contains(&j) {
                    continue;
                }
                if j > cutoff.load(Ordering::Relaxed) || exhausted.lock().unwrap().is_some() {
                    break;
                }
                if let Some(out) = run_one(j) {
                    *slot.lock().unwrap() = Some(out);
                }
            }
        } else {
            let (next, claimable, slots, run_one) = (&next, &claimable, &slots, &run_one);
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(move || loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= nshards {
                            break;
                        }
                        if !claimable(j) {
                            continue;
                        }
                        if let Some(out) = run_one(j) {
                            *slots[j].lock().unwrap() = Some(out);
                        }
                    })
                })
                .collect();
            for w in workers {
                let _ = w.join();
            }
        }
        done.store(true, Ordering::Relaxed);
    });

    let cut = cutoff.load(Ordering::Relaxed);
    let early_exit = cut != usize::MAX;
    let mut merged = Vec::new();
    let mut lost = Vec::new();
    let mut frontier = Vec::new();
    for (j, slot) in slots.into_iter().enumerate() {
        if j > cut {
            break;
        }
        if res.completed.contains(&j) {
            continue;
        }
        match slot.into_inner().unwrap() {
            Some(ShardOut::Done(v, stats)) => merged.push((j, v, stats)),
            Some(ShardOut::Lost) => lost.push(j),
            None => frontier.push(j),
        }
    }
    let mut stats = EnumStats { pruned: frontier_pruned, ..EnumStats::default() };
    for (_, _, s) in &merged {
        stats.absorb(*s);
    }
    let exhausted = exhausted.into_inner().unwrap();
    let status = if !frontier.is_empty() {
        frontier.extend_from_slice(&lost);
        frontier.sort_unstable();
        RunStatus::Inconclusive { reason: exhausted.unwrap_or(ExhaustReason::Cancelled), frontier }
    } else if !lost.is_empty() {
        RunStatus::Degraded { lost }
    } else {
        RunStatus::Complete
    };
    ResilientRun {
        shards: merged,
        stats,
        frontier_pruned,
        status,
        early_exit,
        total_shards: nshards,
    }
}

/// Small set of dynamic event ids with inline storage — taint and ctrl
/// sets hold a handful of loads in practice, so the hot loop never
/// allocates for them. Insertion order is preserved and [`IdSet::pop`]
/// removes the most recent insertion (the undo journal relies on LIFO).
#[derive(Clone, Debug, Default)]
struct IdSet {
    inline_len: u8,
    inline: [u32; IDSET_INLINE],
    spill: Vec<u32>,
}

const IDSET_INLINE: usize = 6;

impl IdSet {
    fn clear(&mut self) {
        self.inline_len = 0;
        self.spill.clear();
    }

    fn contains(&self, id: u32) -> bool {
        self.inline[..self.inline_len as usize].contains(&id) || self.spill.contains(&id)
    }

    /// Insert; returns `true` if the id was new.
    fn insert(&mut self, id: u32) -> bool {
        if self.contains(id) {
            return false;
        }
        if (self.inline_len as usize) < IDSET_INLINE && self.spill.is_empty() {
            self.inline[self.inline_len as usize] = id;
            self.inline_len += 1;
        } else {
            self.spill.push(id);
        }
        true
    }

    /// Remove and return the most recently inserted id.
    fn pop(&mut self) -> Option<u32> {
        if let Some(v) = self.spill.pop() {
            return Some(v);
        }
        if self.inline_len > 0 {
            self.inline_len -= 1;
            return Some(self.inline[self.inline_len as usize]);
        }
        None
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.inline[..self.inline_len as usize].iter().copied().chain(self.spill.iter().copied())
    }

    fn extend_from(&mut self, other: &IdSet) {
        for id in other.iter() {
            self.insert(id);
        }
    }
}

#[derive(Clone)]
struct ThreadState {
    pc: usize,
    /// Dense register file; `None` = never written (expressions read 0).
    regs: Vec<Option<Value>>,
    /// Per register: the load events whose values flow in.
    taint: Vec<IdSet>,
    /// Loads feeding branch conditions seen so far (ctrl sources).
    ctrl: IdSet,
}

/// The single mutable search state. Relations live over a carrier
/// pre-sized to the program's memory-instruction count; a completed
/// execution takes their prefix restriction. Everything is dense —
/// memory and the per-location side lists index by `Loc.0`, observed
/// flags by event id — so the hot loop is map-free.
#[derive(Clone)]
struct SearchState {
    threads: Vec<ThreadState>,
    /// Memory by `Loc.0`.
    memory: Vec<Value>,
    events: Vec<Event>,
    order: Vec<usize>,
    /// Per location: write event ids in coherence (SC) order.
    writes: Vec<Vec<usize>>,
    /// Per location: read event ids in SC order (for `fr` maintenance:
    /// a new write is `fr`-after every existing read of its location).
    reads: Vec<Vec<usize>>,
    /// Per thread: its event ids in program order (for `po` pushes).
    thread_events: Vec<Vec<usize>>,
    /// Observed flags by event id (carrier-sized).
    observed: Vec<bool>,
    /// Memoization bookkeeping, maintained under
    /// [`Reduction::SleepSetMemo`] only. Per location: a commutative
    /// rolling hash over the *static labels* of past release-side
    /// writes — the `so1`-relevant history an acquire-side read can
    /// synchronize with.
    rel_hash: Vec<u64>,
    /// Per event id: snapshot of `rel_hash[loc]` taken when an
    /// acquire-side read performed — pins the read's incoming `so1`
    /// edges. Overwritten on id reuse; no undo entry needed.
    so1h: Vec<u64>,
    /// Per event id: source write of a read's `rf` edge (`u32::MAX` =
    /// read from the initial value).
    rf_src: Vec<u32>,
    /// Per event id: commutative hash over the static labels of the
    /// event's data-dependency sources — pins past `data` edges.
    data_h: Vec<u64>,
    /// Per event id: likewise for control-dependency sources.
    ctrl_h: Vec<u64>,
    po: Relation,
    rf: Relation,
    co: Relation,
    fr: Relation,
    data_dep: Relation,
    ctrl_dep: Relation,
    /// Block-shared scratch memory: address → (value, taint — the load
    /// events whose values flowed into the stored value). Scratch
    /// accesses are local-deterministic under the pipeline's scratch
    /// discipline (cross-thread same-slot accesses must be
    /// barrier-separated), so they drain like register ops and never
    /// become events.
    scratch: BTreeMap<Value, (Value, IdSet)>,
    /// Barriers completed per thread.
    bdone: Vec<u32>,
    /// Event-count watermarks of released barriers (see
    /// [`Execution::barrier_cuts`]).
    barrier_cuts: Vec<usize>,
}

/// Which relation an undo-journal edge belongs to.
#[derive(Clone, Copy)]
enum RelId {
    Po,
    Rf,
    Co,
    Fr,
    Data,
    Ctrl,
}

/// One entry of the undo journal. A tree node records the journal
/// length on entry (a watermark) and backtracking pops entries down to
/// it, inverting each — no per-node collections, no thread-state
/// clones, no allocation on the hot path.
enum Undo {
    Pc {
        tid: u32,
        old: u32,
    },
    Reg {
        tid: u32,
        reg: u32,
        old: Option<Value>,
    },
    Taint {
        tid: u32,
        reg: u32,
        old: IdSet,
    },
    /// One id was appended to the thread's ctrl set (LIFO pop undoes).
    CtrlAdd {
        tid: u32,
    },
    Observed {
        id: u32,
    },
    Mem {
        loc: u32,
        old: Value,
    },
    /// One event (and its order slot) was pushed.
    Event,
    WritePush {
        loc: u32,
    },
    ReadPush {
        loc: u32,
    },
    TePush {
        tid: u32,
    },
    Edge(RelId, u32, u32),
    RelHash {
        loc: u32,
        old: u64,
    },
    /// A scratch slot was written (restore the previous entry).
    Scratch {
        addr: Value,
        old: Option<(Value, IdSet)>,
    },
    /// One barrier rendezvous released: pop the recorded cut (released
    /// pcs and counters are journaled separately).
    BarrierCut,
    /// One thread's completed-barrier counter was incremented.
    Bdone {
        tid: u32,
    },
}

/// SplitMix64 finalizer — the same mixer as the in-tree PRNG.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Memo table sizing: starts small, doubles at 3/4 load, caps at
/// [`MEMO_MAX_ENTRIES`] slots. Past the cap insertion stops while
/// lookups continue — a deterministic "eviction-off" fallback that
/// bounds memory without ever invalidating an earlier prune, so
/// reports stay exact.
const MEMO_INIT_ENTRIES: usize = 1 << 10;
const MEMO_MAX_ENTRIES: usize = 1 << 21;

#[derive(Clone, Copy)]
struct MemoEntry {
    /// State fingerprint; 0 marks an empty slot (real fingerprints are
    /// remapped away from 0).
    fp: u128,
    /// Smallest sleep set the state has been explored under.
    sleep: u64,
}

/// Outcome of consulting the memo table.
enum MemoHit {
    Prune,
    Explore,
}

/// The duplicate-state table plus the per-program analysis that makes
/// the fingerprint sound (see [`Engine::fingerprint`]).
struct Memo {
    /// Per thread, per pc: registers conservatively live at that pc
    /// (read at or after it on some suffix path, with no kills).
    /// Dead registers are excluded from the fingerprint: their values
    /// can never influence future events, and the race detectors do
    /// not read register files.
    live: Vec<Vec<Vec<u16>>>,
    /// Hash coherence order and rf sources exactly? Required when the
    /// viewed program can trigger the path-based detectors
    /// (non-ordering or one-sided classes), which walk `co`/`rf`/`fr`
    /// structure beyond what the `so1` summaries pin.
    exact: bool,
    table: Vec<MemoEntry>,
    mask: usize,
    len: usize,
}

impl Memo {
    fn new(p: &Program) -> Memo {
        let classes = p.classes_used();
        let exact = classes.contains(&OpClass::NonOrdering)
            || classes.contains(&OpClass::Acquire)
            || classes.contains(&OpClass::Release);
        Memo {
            live: p.threads().iter().map(|t| live_regs(&t.instrs)).collect(),
            exact,
            table: vec![MemoEntry { fp: 0, sleep: 0 }; MEMO_INIT_ENTRIES],
            mask: MEMO_INIT_ENTRIES - 1,
            len: 0,
        }
    }

    /// Linear probe to the slot holding `fp`, or the first empty slot.
    fn slot(&self, fp: u128) -> usize {
        let mut i = (((fp as u64) ^ ((fp >> 64) as u64)) as usize) & self.mask;
        loop {
            let e = &self.table[i];
            if e.fp == fp || e.fp == 0 {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Godefroid's state-caching rule, sleep-set aware: prune when the
    /// state was already explored under a sleep set covered by the
    /// current one (everything required now was covered then);
    /// otherwise narrow the stored sleep set and explore.
    fn visit(&mut self, fp: u128, sleep: u64) -> MemoHit {
        let i = self.slot(fp);
        if self.table[i].fp == fp {
            if self.table[i].sleep & !sleep == 0 {
                return MemoHit::Prune;
            }
            self.table[i].sleep &= sleep;
            return MemoHit::Explore;
        }
        if (self.len + 1) * 4 > self.table.len() * 3 {
            if self.table.len() < MEMO_MAX_ENTRIES {
                self.grow();
            } else {
                // At the cap: explore unmemoized rather than evict.
                return MemoHit::Explore;
            }
        }
        let i = self.slot(fp);
        self.table[i] = MemoEntry { fp, sleep };
        self.len += 1;
        MemoHit::Explore
    }

    fn grow(&mut self) {
        let doubled = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, vec![MemoEntry { fp: 0, sleep: 0 }; doubled]);
        self.mask = doubled - 1;
        for e in old {
            if e.fp != 0 {
                let i = self.slot(e.fp);
                self.table[i] = e;
            }
        }
    }
}

/// Conservative backward liveness over one thread's instructions: a
/// register is live at `pc` if some instruction at or after `pc` reads
/// it. No kills (branch targets make a path-sensitive analysis
/// unrewarding for litmus-sized threads) — over-approximating liveness
/// only shrinks memo hits, never soundness.
fn live_regs(instrs: &[Instr]) -> Vec<Vec<u16>> {
    let n = instrs.len();
    let mut out = vec![Vec::new(); n + 1];
    let mut acc: BTreeSet<u16> = BTreeSet::new();
    for pc in (0..n).rev() {
        {
            let mut see = |r: Reg| {
                acc.insert(r.0);
            };
            match &instrs[pc] {
                Instr::Store { val, .. } => val.for_each_reg(&mut see),
                Instr::Rmw { operand, operand2, .. } => {
                    operand.for_each_reg(&mut see);
                    operand2.for_each_reg(&mut see);
                }
                Instr::Assign { expr, .. } => expr.for_each_reg(&mut see),
                Instr::BranchOn { cond } | Instr::JumpIfZero { cond, .. } => {
                    cond.for_each_reg(&mut see)
                }
                Instr::Observe { expr } => expr.for_each_reg(&mut see),
                Instr::ScratchLoad { addr, .. } => addr.for_each_reg(&mut see),
                Instr::ScratchStore { addr, val } => {
                    addr.for_each_reg(&mut see);
                    val.for_each_reg(&mut see);
                }
                Instr::Load { .. } | Instr::Think { .. } | Instr::Barrier => {}
            }
        }
        out[pc] = acc.iter().copied().collect();
    }
    out
}

/// Highest register index + 1 used by a thread (sizes its dense
/// register file).
fn reg_count(instrs: &[Instr]) -> usize {
    let mut n = 0usize;
    for i in instrs {
        let mut see = |r: Reg| {
            n = n.max(r.0 as usize + 1);
        };
        match i {
            Instr::Load { dst, .. } => see(*dst),
            Instr::Store { val, .. } => val.for_each_reg(&mut see),
            Instr::Rmw { operand, operand2, dst, .. } => {
                operand.for_each_reg(&mut see);
                operand2.for_each_reg(&mut see);
                see(*dst);
            }
            Instr::Assign { dst, expr } => {
                expr.for_each_reg(&mut see);
                see(*dst);
            }
            Instr::BranchOn { cond } | Instr::JumpIfZero { cond, .. } => {
                cond.for_each_reg(&mut see)
            }
            Instr::Observe { expr } => expr.for_each_reg(&mut see),
            Instr::ScratchLoad { addr, dst } => {
                addr.for_each_reg(&mut see);
                see(*dst);
            }
            Instr::ScratchStore { addr, val } => {
                addr.for_each_reg(&mut see);
                val.for_each_reg(&mut see);
            }
            Instr::Think { .. } | Instr::Barrier => {}
        }
    }
    n
}

/// What [`Engine::drain`] stopped on.
enum Drained {
    /// No local-deterministic instruction is pending anywhere.
    Done,
    /// A quantum load (under the quantum transformation) — a local
    /// *choice* point the caller must branch over.
    QuantumLoad { tid: usize, dst: Reg },
}

struct Engine<'a> {
    p: &'a Program,
    limits: &'a EnumLimits,
    quantum: bool,
    por: bool,
    /// Maintain the memo bookkeeping columns (`rel_hash`/`so1h`/…)?
    /// True for [`Reduction::SleepSetMemo`] even during frontier
    /// collection, so shard snapshots carry correct history summaries.
    track: bool,
    st: SearchState,
    /// The undo journal; tree nodes record a watermark on entry and
    /// [`Engine::undo`] pops back to it.
    journal: Vec<Undo>,
    visitor: &'a mut dyn ExecutionVisitor,
    /// Executions emitted so far, shared across shards so the limit is
    /// a global resource bound.
    counter: &'a AtomicUsize,
    stats: EnumStats,
    /// Set when the visitor returns `false`; unwinds without error.
    stop: bool,
    /// `Some(d)`: frontier-collection mode — cut at depth `d`, pushing
    /// shard jobs instead of exploring.
    frontier_depth: Option<usize>,
    shards: Vec<Shard>,
    /// Static label base per thread: `label(ev) = base[tid] + iid`.
    base: Vec<u64>,
    /// Duplicate-state table ([`Reduction::SleepSetMemo`], non-frontier
    /// engines only).
    memo: Option<Memo>,
    /// Scratch: expression-taint accumulator, reused across steps.
    tset: IdSet,
    /// Scratch: completed-execution snapshot reused across emits.
    out: Execution,
    /// Budget-poll countdown: the budget (when present) is consulted
    /// once every [`BUDGET_POLL_INTERVAL`] tree nodes.
    poll: u32,
}

/// Tree nodes between two budget polls. At litmus-scale node rates
/// (millions per second) this checks the deadline every fraction of a
/// millisecond while keeping the hot-loop cost to a decrement and a
/// branch.
const BUDGET_POLL_INTERVAL: u32 = 4096;

impl<'a> Engine<'a> {
    fn new(
        p: &'a Program,
        limits: &'a EnumLimits,
        quantum: bool,
        reduction: Reduction,
        visitor: &'a mut dyn ExecutionVisitor,
        counter: &'a AtomicUsize,
        frontier_depth: Option<usize>,
    ) -> Engine<'a> {
        // Carrier bound: every memory instruction runs at most once
        // (pcs only move forward), and the quantum transformation never
        // adds events.
        let cap = p.threads().iter().flat_map(|t| &t.instrs).filter(|i| i.is_memory()).count();
        let nlocs = p.num_locs();
        let st = SearchState {
            threads: p
                .threads()
                .iter()
                .map(|t| {
                    let nregs = reg_count(&t.instrs);
                    ThreadState {
                        pc: 0,
                        regs: vec![None; nregs],
                        taint: vec![IdSet::default(); nregs],
                        ctrl: IdSet::default(),
                    }
                })
                .collect(),
            memory: (0..nlocs as u32).map(|l| p.init_value(Loc(l))).collect(),
            events: Vec::with_capacity(cap),
            order: Vec::with_capacity(cap),
            writes: vec![Vec::new(); nlocs],
            reads: vec![Vec::new(); nlocs],
            thread_events: vec![Vec::new(); p.threads().len()],
            observed: vec![false; cap],
            rel_hash: vec![0; nlocs],
            so1h: vec![0; cap],
            rf_src: vec![u32::MAX; cap],
            data_h: vec![0; cap],
            ctrl_h: vec![0; cap],
            po: Relation::empty(cap),
            rf: Relation::empty(cap),
            co: Relation::empty(cap),
            fr: Relation::empty(cap),
            data_dep: Relation::empty(cap),
            ctrl_dep: Relation::empty(cap),
            scratch: BTreeMap::new(),
            bdone: vec![0; p.threads().len()],
            barrier_cuts: Vec::new(),
        };
        let mut base = Vec::with_capacity(p.threads().len());
        let mut acc = 1u64;
        for t in p.threads() {
            base.push(acc);
            acc += t.instrs.len() as u64;
        }
        let out = Execution {
            events: Vec::with_capacity(cap),
            order: Vec::with_capacity(cap),
            result: ExecResult {
                memory: (0..nlocs as u32).map(|l| (Loc(l), p.init_value(Loc(l)))).collect(),
                regs: vec![BTreeMap::new(); p.threads().len()],
            },
            po: Relation::empty(0),
            rf: Relation::empty(0),
            co: Relation::empty(0),
            fr: Relation::empty(0),
            data_dep: Relation::empty(0),
            addr_dep: Relation::empty(0),
            ctrl_dep: Relation::empty(0),
            observed: Vec::with_capacity(cap),
            barrier_cuts: Vec::new(),
        };
        Engine {
            p,
            limits,
            quantum,
            por: reduction != Reduction::Exhaustive,
            track: reduction == Reduction::SleepSetMemo,
            st,
            journal: Vec::new(),
            visitor,
            counter,
            stats: EnumStats::default(),
            stop: false,
            frontier_depth,
            shards: Vec::new(),
            base,
            memo: (reduction == Reduction::SleepSetMemo && frontier_depth.is_none())
                .then(|| Memo::new(p)),
            tset: IdSet::default(),
            out,
            poll: BUDGET_POLL_INTERVAL,
        }
    }

    /// Amortized cooperative budget poll — called once per tree node,
    /// consults [`EnumLimits::budget`] every [`BUDGET_POLL_INTERVAL`]
    /// calls. Frontier-collection engines never poll: the cut walks
    /// only the top levels of the tree, and a poll failure there would
    /// leave nothing to report a frontier *of*.
    fn poll_budget(&mut self) -> Result<(), EnumError> {
        let Some(budget) = &self.limits.budget else { return Ok(()) };
        self.poll -= 1;
        if self.poll > 0 {
            return Ok(());
        }
        self.poll = BUDGET_POLL_INTERVAL;
        if self.frontier_depth.is_some() {
            return Ok(());
        }
        let approx = self.journal.capacity() * std::mem::size_of::<Undo>()
            + self.memo.as_ref().map_or(0, |m| m.table.len() * std::mem::size_of::<MemoEntry>());
        budget.check(approx).map_err(EnumError::from)
    }

    /// Static label of an already-pushed event: stable across
    /// interleavings (instruction identity, not dynamic id).
    fn label(&self, id: usize) -> u64 {
        let ev = &self.st.events[id];
        self.base[ev.tid] + ev.iid as u64
    }

    fn set_pc(&mut self, tid: usize, pc: usize) {
        let t = &mut self.st.threads[tid];
        self.journal.push(Undo::Pc { tid: tid as u32, old: t.pc as u32 });
        t.pc = pc;
    }

    fn set_reg(&mut self, tid: usize, r: Reg, v: Value) {
        let slot = &mut self.st.threads[tid].regs[r.0 as usize];
        self.journal.push(Undo::Reg { tid: tid as u32, reg: r.0 as u32, old: *slot });
        *slot = Some(v);
    }

    /// Replace `tid`'s taint set for `r` with the scratch set, which is
    /// left cleared.
    fn set_taint_from_scratch(&mut self, tid: usize, r: Reg) {
        let old = std::mem::replace(
            &mut self.st.threads[tid].taint[r.0 as usize],
            std::mem::take(&mut self.tset),
        );
        self.journal.push(Undo::Taint { tid: tid as u32, reg: r.0 as u32, old });
    }

    /// Merge the scratch taint set into `tid`'s ctrl set, which the
    /// journal undoes by LIFO pops. Leaves the scratch cleared.
    fn extend_ctrl_from_scratch(&mut self, tid: usize) {
        let tset = std::mem::take(&mut self.tset);
        for id in tset.iter() {
            if self.st.threads[tid].ctrl.insert(id) {
                self.journal.push(Undo::CtrlAdd { tid: tid as u32 });
            }
        }
        self.tset = tset;
        self.tset.clear();
    }

    /// Accumulate the taint of `e`'s registers into the scratch set
    /// (callers clear it first; RMWs gather both operands).
    fn gather_taint(&mut self, tid: usize, e: &Expr) {
        let t = &self.st.threads[tid];
        let tset = &mut self.tset;
        e.for_each_reg(&mut |r| {
            if let Some(s) = t.taint.get(r.0 as usize) {
                tset.extend_from(s);
            }
        });
    }

    fn set_mem(&mut self, loc: Loc, v: Value) {
        let slot = &mut self.st.memory[loc.0 as usize];
        self.journal.push(Undo::Mem { loc: loc.0, old: *slot });
        *slot = v;
    }

    fn add_edge(&mut self, rel: RelId, a: usize, b: usize) {
        let r = match rel {
            RelId::Po => &mut self.st.po,
            RelId::Rf => &mut self.st.rf,
            RelId::Co => &mut self.st.co,
            RelId::Fr => &mut self.st.fr,
            RelId::Data => &mut self.st.data_dep,
            RelId::Ctrl => &mut self.st.ctrl_dep,
        };
        debug_assert!(!r.contains(a, b), "incremental edges are inserted exactly once");
        r.insert(a, b);
        self.journal.push(Undo::Edge(rel, a as u32, b as u32));
    }

    /// Pop the journal back to `mark`, inverting every entry.
    fn undo(&mut self, mark: usize) {
        while self.journal.len() > mark {
            match self.journal.pop().expect("journal above watermark") {
                Undo::Pc { tid, old } => self.st.threads[tid as usize].pc = old as usize,
                Undo::Reg { tid, reg, old } => {
                    self.st.threads[tid as usize].regs[reg as usize] = old;
                }
                Undo::Taint { tid, reg, old } => {
                    self.st.threads[tid as usize].taint[reg as usize] = old;
                }
                Undo::CtrlAdd { tid } => {
                    self.st.threads[tid as usize].ctrl.pop();
                }
                Undo::Observed { id } => self.st.observed[id as usize] = false,
                Undo::Mem { loc, old } => self.st.memory[loc as usize] = old,
                Undo::Event => {
                    let n = self.st.events.len() - 1;
                    self.st.events.truncate(n);
                    self.st.order.truncate(n);
                }
                Undo::WritePush { loc } => {
                    self.st.writes[loc as usize].pop();
                }
                Undo::ReadPush { loc } => {
                    self.st.reads[loc as usize].pop();
                }
                Undo::TePush { tid } => {
                    self.st.thread_events[tid as usize].pop();
                }
                Undo::Edge(rel, a, b) => {
                    let r = match rel {
                        RelId::Po => &mut self.st.po,
                        RelId::Rf => &mut self.st.rf,
                        RelId::Co => &mut self.st.co,
                        RelId::Fr => &mut self.st.fr,
                        RelId::Data => &mut self.st.data_dep,
                        RelId::Ctrl => &mut self.st.ctrl_dep,
                    };
                    r.remove(a as usize, b as usize);
                }
                Undo::RelHash { loc, old } => self.st.rel_hash[loc as usize] = old,
                Undo::Scratch { addr, old } => {
                    match old {
                        Some(e) => self.st.scratch.insert(addr, e),
                        None => self.st.scratch.remove(&addr),
                    };
                }
                Undo::BarrierCut => {
                    self.st.barrier_cuts.pop();
                }
                Undo::Bdone { tid } => self.st.bdone[tid as usize] -= 1,
            }
        }
    }

    /// Register a new event: relation pushes, side lists, order, memo
    /// bookkeeping. Data-dependency sources are taken from the scratch
    /// taint set (left cleared); control sources from the thread's
    /// ctrl set.
    fn push_event(&mut self, ev: Event) {
        let id = ev.id;
        let tid = ev.tid;
        let loc = ev.loc;
        let access = ev.access;
        let li = loc.0 as usize;
        // po: every earlier event of the thread precedes the new one
        // (events are created in program order, so this stays the full
        // transitive po).
        for i in 0..self.st.thread_events[tid].len() {
            let a = self.st.thread_events[tid][i];
            self.add_edge(RelId::Po, a, id);
        }
        self.st.thread_events[tid].push(id);
        self.journal.push(Undo::TePush { tid: tid as u32 });
        if access.reads() {
            // rf: read from the coherence-latest write, if any. Reads
            // of the initial value have no rf edge; every later write
            // of the location will add an fr edge instead.
            let src = self.st.writes[li].last().copied();
            if let Some(w) = src {
                self.add_edge(RelId::Rf, w, id);
            }
            self.st.reads[li].push(id);
            self.journal.push(Undo::ReadPush { loc: loc.0 });
            if self.track {
                self.st.rf_src[id] = src.map_or(u32::MAX, |w| w as u32);
                if ev.class.is_acquire_side() {
                    self.st.so1h[id] = self.st.rel_hash[li];
                }
            }
        }
        if access.writes() {
            // co: after every existing write of the location; fr: every
            // existing read of the location read from a co-earlier
            // write (or the initial value), so it is fr-before the new
            // write.
            for i in 0..self.st.writes[li].len() {
                let w = self.st.writes[li][i];
                self.add_edge(RelId::Co, w, id);
            }
            for i in 0..self.st.reads[li].len() {
                let r = self.st.reads[li][i];
                if r != id {
                    self.add_edge(RelId::Fr, r, id);
                }
            }
            self.st.writes[li].push(id);
            self.journal.push(Undo::WritePush { loc: loc.0 });
            if self.track && ev.class.is_release_side() {
                let old = self.st.rel_hash[li];
                self.journal.push(Undo::RelHash { loc: loc.0, old });
                self.st.rel_hash[li] = old.wrapping_add(mix64(self.base[tid] + ev.iid as u64));
            }
        }
        let data = std::mem::take(&mut self.tset);
        let mut dh = 0u64;
        for src in data.iter() {
            self.add_edge(RelId::Data, src as usize, id);
            if self.track {
                dh = dh.wrapping_add(mix64(self.label(src as usize)));
            }
        }
        self.tset = data;
        self.tset.clear();
        let ctrl = std::mem::take(&mut self.st.threads[tid].ctrl);
        let mut ch = 0u64;
        for src in ctrl.iter() {
            self.add_edge(RelId::Ctrl, src as usize, id);
            if self.track {
                ch = ch.wrapping_add(mix64(self.label(src as usize)));
            }
        }
        self.st.threads[tid].ctrl = ctrl;
        if self.track {
            self.st.data_h[id] = dh;
            self.st.ctrl_h[id] = ch;
        }
        self.st.events.push(ev);
        self.st.order.push(id);
        self.journal.push(Undo::Event);
    }

    /// Phase 1: drain local-deterministic instructions of every thread;
    /// they commute with everything, so running them eagerly prunes
    /// redundant interleavings. Stops at a quantum load (a local choice
    /// point the caller branches over).
    fn drain(&mut self) -> Drained {
        loop {
            let mut progressed = false;
            for tid in 0..self.st.threads.len() {
                loop {
                    let p = self.p;
                    let pc = self.st.threads[tid].pc;
                    let Some(instr) = p.threads()[tid].instrs.get(pc) else { break };
                    match instr {
                        Instr::Assign { dst, expr } => {
                            let v = expr.eval_slice(&self.st.threads[tid].regs);
                            self.tset.clear();
                            self.gather_taint(tid, expr);
                            self.set_reg(tid, *dst, v);
                            self.set_taint_from_scratch(tid, *dst);
                            self.set_pc(tid, pc + 1);
                            progressed = true;
                        }
                        Instr::BranchOn { cond } => {
                            self.tset.clear();
                            self.gather_taint(tid, cond);
                            self.extend_ctrl_from_scratch(tid);
                            self.set_pc(tid, pc + 1);
                            progressed = true;
                        }
                        Instr::Observe { expr } => {
                            self.tset.clear();
                            self.gather_taint(tid, expr);
                            let tset = std::mem::take(&mut self.tset);
                            for id in tset.iter() {
                                let i = id as usize;
                                if !self.st.observed[i] {
                                    self.st.observed[i] = true;
                                    self.journal.push(Undo::Observed { id });
                                }
                            }
                            self.tset = tset;
                            self.tset.clear();
                            self.set_pc(tid, pc + 1);
                            progressed = true;
                        }
                        Instr::JumpIfZero { cond, skip } => {
                            let v = cond.eval_slice(&self.st.threads[tid].regs);
                            self.tset.clear();
                            self.gather_taint(tid, cond);
                            self.extend_ctrl_from_scratch(tid);
                            self.set_pc(tid, pc + if v == 0 { *skip + 1 } else { 1 });
                            progressed = true;
                        }
                        Instr::Think { .. } => {
                            // Axiomatic no-op: a pure timing hint with
                            // no event and no register effect.
                            self.set_pc(tid, pc + 1);
                            progressed = true;
                        }
                        Instr::ScratchLoad { addr, dst } => {
                            let a = addr.eval_slice(&self.st.threads[tid].regs);
                            self.tset.clear();
                            self.gather_taint(tid, addr);
                            let v = match self.st.scratch.get(&a) {
                                Some((v, t)) => {
                                    self.tset.extend_from(t);
                                    *v
                                }
                                None => 0,
                            };
                            self.set_reg(tid, *dst, v);
                            self.set_taint_from_scratch(tid, *dst);
                            self.set_pc(tid, pc + 1);
                            progressed = true;
                        }
                        Instr::ScratchStore { addr, val } => {
                            let a = addr.eval_slice(&self.st.threads[tid].regs);
                            let v = val.eval_slice(&self.st.threads[tid].regs);
                            self.tset.clear();
                            self.gather_taint(tid, addr);
                            self.gather_taint(tid, val);
                            let taint = std::mem::take(&mut self.tset);
                            let old = self.st.scratch.insert(a, (v, taint));
                            self.journal.push(Undo::Scratch { addr: a, old });
                            self.set_pc(tid, pc + 1);
                            progressed = true;
                        }
                        Instr::Load { class: OpClass::Quantum, dst, .. } if self.quantum => {
                            return Drained::QuantumLoad { tid, dst: *dst };
                        }
                        _ => break,
                    }
                }
            }
            if !progressed {
                // Barrier rendezvous is deterministic (no scheduling
                // choice), so it belongs to the drain closure: release
                // and keep draining the freed threads.
                if self.try_release_barrier() {
                    continue;
                }
                return Drained::Done;
            }
        }
    }

    /// Release one block-barrier rendezvous if it is complete: every
    /// thread must have finished more barriers than the lagging group
    /// or be parked at its next [`Instr::Barrier`] with the lagging
    /// count. A thread that terminated without matching the count
    /// blocks the rendezvous forever — a deadlock, so the search path
    /// is dropped with no result, mirroring real-hardware behavior.
    /// Records an event-count cut (the synchronization watermark) and
    /// advances every released pc, all journaled.
    fn try_release_barrier(&mut self) -> bool {
        let p = self.p;
        let parked = |t: &ThreadState, tid: usize| {
            p.threads()[tid].instrs.get(t.pc).is_some_and(|i| matches!(i, Instr::Barrier))
        };
        // Lagging group: the minimum completed-barrier count over
        // parked threads.
        let mut k = u32::MAX;
        for (tid, t) in self.st.threads.iter().enumerate() {
            if parked(t, tid) {
                k = k.min(self.st.bdone[tid]);
            }
        }
        if k == u32::MAX {
            return false;
        }
        for (tid, t) in self.st.threads.iter().enumerate() {
            let done = self.st.bdone[tid];
            if !(done > k || (done == k && parked(t, tid))) {
                return false;
            }
        }
        self.st.barrier_cuts.push(self.st.events.len());
        self.journal.push(Undo::BarrierCut);
        for tid in 0..self.st.threads.len() {
            if self.st.bdone[tid] == k {
                let pc = self.st.threads[tid].pc;
                self.set_pc(tid, pc + 1);
                self.st.bdone[tid] += 1;
                self.journal.push(Undo::Bdone { tid: tid as u32 });
            }
        }
        true
    }

    /// The next memory operation of `tid`, as `(loc, writes)` — the
    /// independence signature for sleep sets.
    fn next_op(&self, tid: usize) -> (Loc, bool) {
        let pc = self.st.threads[tid].pc;
        match &self.p.threads()[tid].instrs[pc] {
            Instr::Load { loc, .. } => (*loc, false),
            Instr::Store { loc, .. } => (*loc, true),
            Instr::Rmw { loc, .. } => (*loc, true),
            _ => unreachable!("next_op called on a thread not at a memory instruction"),
        }
    }

    /// Do two pending steps commute? Yes iff they touch different
    /// locations or are both reads — swapping such adjacent steps
    /// changes nothing the models look at (see DESIGN.md).
    fn independent(a: (Loc, bool), b: (Loc, bool)) -> bool {
        a.0 != b.0 || (!a.1 && !b.1)
    }

    /// One tree node: drain locals, then branch on which thread moves.
    /// `sleep` is the sleep set (bitmask of enabled threads whose moves
    /// are covered by an already-explored sibling order); `depth`
    /// counts choice points for frontier collection.
    fn node(&mut self, sleep: u64, depth: usize) -> Result<(), EnumError> {
        if self.stop {
            return Ok(());
        }
        self.poll_budget()?;
        let mark = self.journal.len();
        match self.drain() {
            Drained::Done => {}
            Drained::QuantumLoad { tid, dst } => {
                // Quantum transformation: ri = random(). No memory
                // event; the load is gone in Pq. A local choice, so the
                // sleep set carries through unchanged.
                let limits = self.limits;
                for &v in &limits.quantum_domain {
                    let m2 = self.journal.len();
                    self.set_reg(tid, dst, v);
                    self.tset.clear();
                    self.set_taint_from_scratch(tid, dst);
                    let pc = self.st.threads[tid].pc;
                    self.set_pc(tid, pc + 1);
                    self.node(sleep, depth + 1)?;
                    self.undo(m2);
                    if self.stop {
                        break;
                    }
                }
                self.undo(mark);
                return Ok(());
            }
        }

        let p = self.p;
        let terminal = self
            .st
            .threads
            .iter()
            .enumerate()
            .all(|(tid, t)| t.pc >= p.threads()[tid].instrs.len());

        // Frontier-collection mode: cut here instead of exploring.
        if let Some(d) = self.frontier_depth {
            if terminal || depth >= d {
                self.shards.push(Shard { st: self.st.clone(), sleep });
                self.undo(mark);
                return Ok(());
            }
        }

        // Duplicate-state memoization: prune when an equivalent state
        // was already explored under a covering sleep set. Terminal
        // states store an empty sleep set, so equivalent completions
        // are never re-emitted (and never re-counted against the
        // execution budget).
        if let Some(mut memo) = self.memo.take() {
            let fp = self.fingerprint(&memo);
            let hit = memo.visit(fp, if terminal { 0 } else { sleep });
            self.stats.table_peak = self.stats.table_peak.max(memo.len);
            self.memo = Some(memo);
            if matches!(hit, MemoHit::Prune) {
                self.stats.memo_pruned += 1;
                self.undo(mark);
                return Ok(());
            }
        }

        if terminal {
            self.emit()?;
            self.undo(mark);
            return Ok(());
        }

        // Phase 2: branch over which thread performs its next memory
        // event. After the drain every live thread sits at one, so
        // transitions are exactly the enabled threads (a tid bitmask —
        // the sleep-set machinery already caps threads at 64).
        let mut enabled = 0u64;
        for tid in 0..self.st.threads.len() {
            let pc = self.st.threads[tid].pc;
            if p.threads()[tid].instrs.get(pc).is_some_and(|i| i.is_memory()) {
                enabled |= 1 << tid;
            }
        }
        let mut slept = sleep;
        let mut rest = enabled;
        while rest != 0 {
            let tid = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if self.por && (slept >> tid) & 1 == 1 {
                // A sibling order already covers every trace through
                // this move — prune the subtree.
                self.stats.pruned += 1;
                continue;
            }
            let child_sleep = if self.por {
                let my = self.next_op(tid);
                let mut cs = 0u64;
                let mut others = enabled & slept;
                while others != 0 {
                    let u = others.trailing_zeros() as usize;
                    others &= others - 1;
                    if Self::independent(self.next_op(u), my) {
                        cs |= 1 << u;
                    }
                }
                cs
            } else {
                0
            };
            self.step(tid, child_sleep, depth)?;
            if self.stop {
                break;
            }
            if self.por {
                slept |= 1 << tid;
            }
        }
        self.undo(mark);
        Ok(())
    }

    /// Take thread `tid`'s pending memory step and recurse. Quantum
    /// stores/RMWs branch over the domain internally (every branch is
    /// the same scheduling choice, so they share one sleep set).
    fn step(&mut self, tid: usize, child_sleep: u64, depth: usize) -> Result<(), EnumError> {
        let p = self.p;
        let pc = self.st.threads[tid].pc;
        let instr = &p.threads()[tid].instrs[pc];
        if self.quantum && instr.class() == Some(OpClass::Quantum) {
            // Quantum transformation (§3.4.3): quantum stores write
            // random(); a quantum RMW's load returns random() and its
            // store writes random().
            let limits = self.limits;
            match instr {
                Instr::Store { class, loc, .. } => {
                    for &v in &limits.quantum_domain {
                        let m = self.journal.len();
                        self.quantum_store_event(tid, *class, *loc, v, None);
                        self.node(child_sleep, depth + 1)?;
                        self.undo(m);
                        if self.stop {
                            break;
                        }
                    }
                    return Ok(());
                }
                Instr::Rmw { class, loc, dst, .. } => {
                    'outer: for &old in &limits.quantum_domain {
                        for &new in &limits.quantum_domain {
                            let m = self.journal.len();
                            self.quantum_store_event(tid, *class, *loc, new, Some((*dst, old)));
                            self.node(child_sleep, depth + 1)?;
                            self.undo(m);
                            if self.stop {
                                break 'outer;
                            }
                        }
                    }
                    return Ok(());
                }
                _ => {}
            }
        }
        let m = self.journal.len();
        self.perform(tid);
        self.node(child_sleep, depth + 1)?;
        self.undo(m);
        Ok(())
    }

    /// Perform thread `tid`'s next memory instruction, journaling every
    /// effect.
    fn perform(&mut self, tid: usize) {
        let p = self.p;
        let pc = self.st.threads[tid].pc;
        let instr = &p.threads()[tid].instrs[pc];
        let id = self.st.events.len();
        match instr {
            Instr::Load { class, loc, dst } => {
                let v = self.st.memory[loc.0 as usize];
                self.tset.clear();
                self.push_event(Event {
                    id,
                    tid,
                    iid: pc,
                    class: *class,
                    loc: *loc,
                    access: Access::Read,
                    rval: Some(v),
                    wval: None,
                    write_fn: None,
                });
                self.set_reg(tid, *dst, v);
                self.tset.clear();
                self.tset.insert(id as u32);
                self.set_taint_from_scratch(tid, *dst);
            }
            Instr::Store { class, loc, val } => {
                let v = val.eval_slice(&self.st.threads[tid].regs);
                self.tset.clear();
                self.gather_taint(tid, val);
                self.push_event(Event {
                    id,
                    tid,
                    iid: pc,
                    class: *class,
                    loc: *loc,
                    access: Access::Write,
                    rval: None,
                    wval: Some(v),
                    write_fn: Some(WriteFn::Set(v)),
                });
                self.set_mem(*loc, v);
            }
            Instr::Rmw { class, loc, op, operand, operand2, dst } => {
                let old = self.st.memory[loc.0 as usize];
                let k = operand.eval_slice(&self.st.threads[tid].regs);
                let k2 = operand2.eval_slice(&self.st.threads[tid].regs);
                let new = op.apply(old, k, k2);
                self.tset.clear();
                self.gather_taint(tid, operand);
                self.gather_taint(tid, operand2);
                let wf = match op {
                    crate::program::RmwOp::FetchAdd => WriteFn::Add(k),
                    crate::program::RmwOp::FetchSub => WriteFn::Add(k.wrapping_neg()),
                    crate::program::RmwOp::FetchAnd => WriteFn::And(k),
                    crate::program::RmwOp::FetchOr => WriteFn::Or(k),
                    crate::program::RmwOp::FetchXor => WriteFn::Xor(k),
                    crate::program::RmwOp::FetchMin => WriteFn::Min(k),
                    crate::program::RmwOp::FetchMax => WriteFn::Max(k),
                    crate::program::RmwOp::Exchange => WriteFn::Set(k),
                    crate::program::RmwOp::Cas => WriteFn::Cas,
                };
                self.push_event(Event {
                    id,
                    tid,
                    iid: pc,
                    class: *class,
                    loc: *loc,
                    access: Access::Rmw,
                    rval: Some(old),
                    wval: Some(new),
                    write_fn: Some(wf),
                });
                self.set_mem(*loc, new);
                self.set_reg(tid, *dst, old);
                self.tset.clear();
                self.tset.insert(id as u32);
                self.set_taint_from_scratch(tid, *dst);
            }
            _ => unreachable!("perform called on non-memory instruction"),
        }
        let pc = self.st.threads[tid].pc;
        self.set_pc(tid, pc + 1);
    }

    /// Emit a quantum store event writing `wval` (the transformed form
    /// of a quantum store or RMW), journaling every effect.
    fn quantum_store_event(
        &mut self,
        tid: usize,
        class: OpClass,
        loc: Loc,
        wval: Value,
        dst: Option<(Reg, Value)>,
    ) {
        let pc = self.st.threads[tid].pc;
        let id = self.st.events.len();
        self.tset.clear();
        self.push_event(Event {
            id,
            tid,
            iid: pc,
            class,
            loc,
            access: Access::Write,
            rval: None,
            wval: Some(wval),
            write_fn: Some(WriteFn::Set(wval)),
        });
        self.set_mem(loc, wval);
        if let Some((r, v)) = dst {
            self.set_reg(tid, r, v);
            self.tset.clear();
            self.set_taint_from_scratch(tid, r);
        }
        self.set_pc(tid, pc + 1);
    }

    /// A complete execution: snapshot the state into the reused scratch
    /// [`Execution`] and hand it to the visitor. The scratch keeps its
    /// buffers across emits, so the per-execution cost is copies, not
    /// allocations.
    fn emit(&mut self) -> Result<(), EnumError> {
        let seen = self.counter.fetch_add(1, Ordering::Relaxed);
        if seen >= self.limits.max_executions {
            return Err(EnumError::TooManyExecutions { limit: self.limits.max_executions });
        }
        self.stats.explored += 1;
        let n = self.st.events.len();
        let out = &mut self.out;
        out.events.clone_from(&self.st.events);
        out.order.clone_from(&self.st.order);
        for (l, v) in out.result.memory.iter_mut() {
            *v = self.st.memory[l.0 as usize];
        }
        for (tid, t) in self.st.threads.iter().enumerate() {
            let m = &mut out.result.regs[tid];
            m.clear();
            for (i, r) in t.regs.iter().enumerate() {
                if let Some(v) = r {
                    m.insert(Reg(i as u16), *v);
                }
            }
        }
        self.st.po.restrict_into(n, &mut out.po);
        self.st.rf.restrict_into(n, &mut out.rf);
        self.st.co.restrict_into(n, &mut out.co);
        self.st.fr.restrict_into(n, &mut out.fr);
        self.st.data_dep.restrict_into(n, &mut out.data_dep);
        out.addr_dep.reset(n);
        self.st.ctrl_dep.restrict_into(n, &mut out.ctrl_dep);
        out.observed.clear();
        out.observed.extend_from_slice(&self.st.observed[..n]);
        out.barrier_cuts.clone_from(&self.st.barrier_cuts);
        if !self.visitor.visit(&self.out) {
            self.stop = true;
        }
        Ok(())
    }

    /// Canonical fingerprint of the current search state, SplitMix64-
    /// mixed into two independent 64-bit lanes. Two states with equal
    /// fingerprints are indistinguishable to the race detectors —
    /// everything Listing 7 reads is pinned:
    ///
    /// - per-thread control state: pc plus the *static-label sequence*
    ///   of executed memory events (pins `po` and each thread's
    ///   instruction path);
    /// - live registers only (value + taint labels; dead registers
    ///   cannot influence future events, and only register *files* —
    ///   which the race detectors ignore — could expose them);
    /// - per-thread ctrl sources, memory, observed flags;
    /// - the event multiset: label, access, class, write function,
    ///   incoming `so1`/`data`/`ctrl` summary hashes (`so1h` pins which
    ///   release-side writes an acquire-side read synchronizes with;
    ///   `data_h`/`ctrl_h` pin past dependency edges);
    /// - per-location release-write history (`rel_hash`), and — in
    ///   exact mode — the full per-location coherence order and rf
    ///   sources (the path-based detectors read them).
    fn fingerprint(&self, memo: &Memo) -> u128 {
        let mut a: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut b: u64 = 0x243F_6A88_85A3_08D3;
        let mut feed = |v: u64| {
            a = mix64(a ^ v);
            b = mix64(b.rotate_left(17) ^ v ^ 0xA076_1D64_78BD_642F);
        };
        for (tid, t) in self.st.threads.iter().enumerate() {
            feed(t.pc as u64);
            for &e in &self.st.thread_events[tid] {
                feed(self.label(e));
            }
            let live_tbl = &memo.live[tid];
            let live = &live_tbl[t.pc.min(live_tbl.len() - 1)];
            for &r in live {
                let ri = r as usize;
                feed(r as u64);
                feed(t.regs.get(ri).copied().flatten().unwrap_or(0) as u64);
                let mut th = 0u64;
                if let Some(ts) = t.taint.get(ri) {
                    for id in ts.iter() {
                        th = th.wrapping_add(mix64(self.label(id as usize)));
                    }
                }
                feed(th);
            }
            let mut ch = 0u64;
            for id in t.ctrl.iter() {
                ch = ch.wrapping_add(mix64(self.label(id as usize)));
            }
            feed(ch);
        }
        for &v in &self.st.memory {
            feed(v as u64);
        }
        for (a, (v, t)) in &self.st.scratch {
            feed(*a as u64);
            feed(*v as u64);
            let mut th = 0u64;
            for id in t.iter() {
                th = th.wrapping_add(mix64(self.label(id as usize)));
            }
            feed(th);
        }
        for &b in &self.st.bdone {
            feed(b as u64);
        }
        for &c in &self.st.barrier_cuts {
            feed(c as u64);
        }
        let mut oh = 0u64;
        for (id, &o) in self.st.observed.iter().enumerate().take(self.st.events.len()) {
            if o {
                oh = oh.wrapping_add(mix64(self.label(id)));
            }
        }
        feed(oh);
        let mut eh = 0u64;
        for ev in &self.st.events {
            let mut h = mix64(self.base[ev.tid] + ev.iid as u64);
            h = mix64(
                h ^ match ev.access {
                    Access::Read => 1,
                    Access::Write => 2,
                    Access::Rmw => 3,
                },
            );
            h = mix64(h ^ (ev.class as u64 + 1));
            if let Some(wf) = ev.write_fn {
                let (tag, val) = match wf {
                    WriteFn::Set(v) => (1u64, v),
                    WriteFn::Add(v) => (2, v),
                    WriteFn::And(v) => (3, v),
                    WriteFn::Or(v) => (4, v),
                    WriteFn::Xor(v) => (5, v),
                    WriteFn::Min(v) => (6, v),
                    WriteFn::Max(v) => (7, v),
                    WriteFn::Cas => (8, 0),
                };
                h = mix64(h ^ tag);
                h = mix64(h ^ val as u64);
            }
            if ev.class.is_acquire_side() && ev.access.reads() {
                h = mix64(h ^ self.st.so1h[ev.id]);
            }
            h = mix64(h ^ self.st.data_h[ev.id]);
            h = mix64(h ^ self.st.ctrl_h[ev.id]);
            if memo.exact && ev.access.reads() {
                let src = self.st.rf_src[ev.id];
                let sl = if src == u32::MAX { u64::MAX } else { mix64(self.label(src as usize)) };
                h = mix64(h ^ sl);
            }
            eh = eh.wrapping_add(h);
        }
        feed(eh);
        for &rh in &self.st.rel_hash {
            feed(rh);
        }
        if memo.exact {
            for ws in &self.st.writes {
                for &w in ws {
                    feed(self.label(w));
                }
                feed(0xDEAD_BEEF);
            }
        }
        let fp = ((a as u128) << 64) | b as u128;
        if fp == 0 {
            1
        } else {
            fp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RmwOp;

    fn limits() -> EnumLimits {
        EnumLimits::default()
    }

    /// Store buffering: two threads, each stores then loads the other
    /// location. 4 memory ops → C(4,2) = 6 interleavings.
    fn sb(class: OpClass) -> Program {
        let mut p = Program::new("sb");
        {
            let mut t = p.thread();
            t.store(class, "x", 1);
            let r = t.load(class, "y");
            t.observe(r);
        }
        {
            let mut t = p.thread();
            t.store(class, "y", 1);
            let r = t.load(class, "x");
            t.observe(r);
        }
        p.build()
    }

    #[test]
    fn sb_has_six_interleavings() {
        let execs = enumerate_sc(&sb(OpClass::Paired), &limits()).unwrap();
        assert_eq!(execs.len(), 6);
    }

    #[test]
    fn sb_never_observes_both_zero_under_sc() {
        let execs = enumerate_sc(&sb(OpClass::Paired), &limits()).unwrap();
        for e in &execs {
            let r0 = *e.result.regs[0].get(&Reg(0)).unwrap();
            let r1 = *e.result.regs[1].get(&Reg(0)).unwrap();
            assert!(!(r0 == 0 && r1 == 0), "SC forbids the store-buffering outcome");
        }
        // But the three other outcomes all appear.
        let outcomes: BTreeSet<(Value, Value)> = execs
            .iter()
            .map(|e| {
                (*e.result.regs[0].get(&Reg(0)).unwrap(), *e.result.regs[1].get(&Reg(0)).unwrap())
            })
            .collect();
        assert_eq!(outcomes, BTreeSet::from([(0, 1), (1, 0), (1, 1)]));
    }

    #[test]
    fn rf_points_reads_at_their_writes() {
        let mut p = Program::new("wr");
        p.thread().store(OpClass::Data, "x", 7);
        {
            let mut t = p.thread();
            t.load(OpClass::Data, "x");
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert_eq!(execs.len(), 2);
        for e in &execs {
            let read = e.events.iter().find(|ev| ev.access == Access::Read).unwrap();
            let write = e.events.iter().find(|ev| ev.access == Access::Write).unwrap();
            if read.rval == Some(7) {
                assert!(e.rf.contains(write.id, read.id));
                assert!(!e.fr.contains(read.id, write.id));
            } else {
                assert_eq!(read.rval, Some(0), "reads init");
                assert!(e.rf.is_empty());
                assert!(e.fr.contains(read.id, write.id));
            }
        }
    }

    #[test]
    fn co_orders_same_location_writes() {
        let mut p = Program::new("ww");
        p.thread().store(OpClass::Data, "x", 1);
        p.thread().store(OpClass::Data, "x", 2);
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert_eq!(execs.len(), 2);
        for e in &execs {
            assert_eq!(e.co.len(), 1);
            let (first, last) = e.co.iter_pairs().next().unwrap();
            assert_eq!(e.result.memory.values().next().copied(), e.events[last].wval);
            assert!(
                e.order.iter().position(|&x| x == first).unwrap()
                    < e.order.iter().position(|&x| x == last).unwrap()
            );
        }
    }

    #[test]
    fn rmw_is_atomic_in_sc_enumeration() {
        // Two fetch-adds never lose an update under SC.
        let mut p = Program::new("inc");
        p.thread().rmw(OpClass::Paired, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Paired, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        let c = p.find_loc("c").unwrap();
        let execs = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(execs.len(), 2);
        for e in &execs {
            assert_eq!(e.result.memory[&c], 2);
        }
    }

    #[test]
    fn data_deps_flow_through_assigns() {
        let mut p = Program::new("dep");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Data, "x");
            let r2 = t.assign(Expr::bin(crate::program::BinOp::Add, r.into(), 1.into()));
            t.store(OpClass::Data, "y", r2);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert_eq!(execs.len(), 1);
        let e = &execs[0];
        assert!(e.data_dep.contains(0, 1), "load -> store data dep");
        assert!(e.value_observed(0));
    }

    #[test]
    fn ctrl_deps_mark_later_accesses() {
        let mut p = Program::new("ctrl");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Data, "x");
            t.branch_on(r);
            t.store(OpClass::Data, "y", 1);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        let e = &execs[0];
        assert!(e.ctrl_dep.contains(0, 1));
        assert!(!e.data_dep.contains(0, 1));
        // ctrl alone does not make the value "observed" in Herd's
        // value-observability sense, but obs_dep includes it.
        assert!(e.obs_dep().contains(0, 1));
    }

    #[test]
    fn observe_marks_loads() {
        let mut p = Program::new("obs");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Commutative, "x");
            t.observe(r);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert!(execs[0].value_observed(0));
    }

    #[test]
    fn unobserved_load_is_unobserved() {
        let mut p = Program::new("noobs");
        {
            let mut t = p.thread();
            let _ = t.load(OpClass::Commutative, "x");
            t.store(OpClass::Data, "y", 1);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert!(!execs[0].value_observed(0));
    }

    #[test]
    fn quantum_transformation_randomizes_loads() {
        let mut p = Program::new("q");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Quantum, "x");
            t.observe(r);
        }
        let p = p.build();
        // Plain SC: single execution reading 0.
        let sc = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(sc.len(), 1);
        assert_eq!(sc[0].events.len(), 1);
        // Quantum-equivalent: the load vanishes, one execution per
        // domain value, register takes each.
        let q = enumerate_sc_quantum(&p, &limits()).unwrap();
        assert_eq!(q.len(), 3);
        for e in &q {
            assert!(e.events.is_empty(), "quantum load is not a memory event in Pq");
        }
        let vals: BTreeSet<Value> =
            q.iter().map(|e| *e.result.regs[0].get(&Reg(0)).unwrap()).collect();
        assert_eq!(vals, BTreeSet::from([0, 1, JUNK]));
    }

    #[test]
    fn quantum_rmw_becomes_randomized_store() {
        let mut p = Program::new("qrmw");
        p.thread().rmw(OpClass::Quantum, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        let c = p.find_loc("c").unwrap();
        let q = enumerate_sc_quantum(&p, &limits()).unwrap();
        // 3 random loaded values × 3 random written values.
        assert_eq!(q.len(), 9);
        for e in &q {
            assert_eq!(e.events.len(), 1);
            assert_eq!(e.events[0].access, Access::Write);
            assert_eq!(e.events[0].class, OpClass::Quantum);
        }
        let finals: BTreeSet<Value> = q.iter().map(|e| e.result.memory[&c]).collect();
        assert_eq!(finals, BTreeSet::from([0, 1, JUNK]));
    }

    #[test]
    fn execution_limit_enforced() {
        let mut p = Program::new("big");
        for _ in 0..3 {
            let mut t = p.thread();
            for _ in 0..4 {
                t.store(OpClass::Data, "x", 1);
            }
        }
        let err =
            enumerate_sc(&p.build(), &EnumLimits { max_executions: 10, ..EnumLimits::default() })
                .unwrap_err();
        assert_eq!(err, EnumError::TooManyExecutions { limit: 10 });
    }

    #[test]
    fn conditional_body_skipped_when_zero() {
        let mut p = Program::new("cond");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Paired, "flag");
            t.if_nz(r, |t| {
                t.store(OpClass::Data, "x", 1);
            });
            t.store(OpClass::Data, "y", 2);
        }
        let p = p.build();
        let execs = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(execs.len(), 1);
        let e = &execs[0];
        // flag reads 0 → the x store is skipped, the y store executes.
        assert_eq!(e.events.len(), 2);
        assert!(e.events.iter().all(|ev| p.loc_name(ev.loc) != "x"));
        // Control dependency from the flag load onto the y store.
        assert!(e.ctrl_dep.contains(0, 1));
    }

    #[test]
    fn conditional_body_runs_when_nonzero() {
        let mut p = Program::new("cond2");
        p.set_init("flag", 1);
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Paired, "flag");
            t.if_nz(r, |t| {
                t.store(OpClass::Data, "x", 1);
            });
        }
        let p = p.build();
        let e = &enumerate_sc(&p, &limits()).unwrap()[0];
        assert_eq!(e.events.len(), 2);
        let x = p.find_loc("x").unwrap();
        assert_eq!(e.result.memory[&x], 1);
    }

    #[test]
    fn conditional_mp_is_race_free() {
        // With real control flow, the classic message-passing idiom has
        // no data race in any SC execution: the data read only occurs
        // after the paired flag read returns 1, which orders it.
        let mut p = Program::new("mp_cond");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 42);
            t.store(OpClass::Paired, "flag", 1);
        }
        {
            let mut t = p.thread();
            let f = t.load(OpClass::Paired, "flag");
            t.if_nz(f, |t| {
                let d = t.load(OpClass::Data, "x");
                t.observe(d);
            });
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        for e in &execs {
            assert!(
                crate::races::analyze(e).is_race_free(),
                "conditional MP must be race-free in every SC execution"
            );
        }
    }

    #[test]
    fn po_is_transitive_and_intra_thread() {
        let mut p = Program::new("po");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "a", 1);
            t.store(OpClass::Data, "b", 1);
            t.store(OpClass::Data, "c", 1);
        }
        let e = &enumerate_sc(&p.build(), &limits()).unwrap()[0];
        assert!(e.po.contains(0, 1) && e.po.contains(1, 2) && e.po.contains(0, 2));
        assert!(!e.po.contains(2, 0));
        assert!(e.po.is_acyclic());
    }

    // ---- streaming / POR / sharding ----

    /// A visitor that keeps only what POR promises to preserve:
    /// final-memory results, race verdicts and race kinds.
    #[derive(Default)]
    struct Summary {
        explored: usize,
        memories: BTreeSet<BTreeMap<Loc, Value>>,
        race_kinds: BTreeSet<crate::races::RaceKind>,
        any_race: bool,
    }

    impl ExecutionVisitor for Summary {
        fn visit(&mut self, e: &Execution) -> bool {
            self.explored += 1;
            self.memories.insert(e.result.memory.clone());
            let a = crate::races::analyze(e);
            for r in a.races() {
                self.race_kinds.insert(r.kind);
            }
            self.any_race |= !a.is_race_free();
            true
        }
    }

    #[test]
    fn streaming_matches_materializing_reference() {
        let p = sb(OpClass::Unpaired);
        let mut s = Summary::default();
        let stats = visit_sc(&p, &limits(), false, Reduction::Exhaustive, &mut s).unwrap();
        let execs = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(stats.explored, execs.len());
        assert_eq!(stats.pruned, 0);
        let memories: BTreeSet<_> = execs.iter().map(|e| e.result.memory.clone()).collect();
        assert_eq!(s.memories, memories);
    }

    #[test]
    fn sleep_sets_prune_but_preserve_results_and_verdicts() {
        for class in [OpClass::Paired, OpClass::Unpaired, OpClass::NonOrdering] {
            let p = sb(class);
            let mut full = Summary::default();
            let fs = visit_sc(&p, &limits(), false, Reduction::Exhaustive, &mut full).unwrap();
            let mut red = Summary::default();
            let rs = visit_sc(&p, &limits(), false, Reduction::SleepSet, &mut red).unwrap();
            assert!(rs.explored < fs.explored, "sb must prune: {} vs {}", rs.explored, fs.explored);
            assert!(rs.pruned > 0);
            assert_eq!(red.memories, full.memories, "{class:?}: memory result set changed");
            assert_eq!(red.race_kinds, full.race_kinds, "{class:?}: race kinds changed");
            assert_eq!(red.any_race, full.any_race, "{class:?}: verdict changed");
        }
    }

    #[test]
    fn sleep_sets_compose_with_quantum_domains() {
        // Quantum writer + plain reader on separate locations: domain
        // branching and POR must not interfere.
        let mut p = Program::new("qpor");
        {
            let mut t = p.thread();
            t.store(OpClass::Quantum, "q", 1);
            t.store(OpClass::Data, "a", 1);
        }
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Quantum, "q");
            t.observe(r);
            t.store(OpClass::Data, "b", 2);
        }
        let p = p.build();
        let mut full = Summary::default();
        visit_sc(&p, &limits(), true, Reduction::Exhaustive, &mut full).unwrap();
        let mut red = Summary::default();
        visit_sc(&p, &limits(), true, Reduction::SleepSet, &mut red).unwrap();
        assert_eq!(red.memories, full.memories);
        assert_eq!(red.race_kinds, full.race_kinds);
    }

    #[test]
    fn visitor_can_stop_enumeration_early() {
        struct StopAfter(usize);
        impl ExecutionVisitor for StopAfter {
            fn visit(&mut self, _e: &Execution) -> bool {
                self.0 -= 1;
                self.0 > 0
            }
        }
        let p = sb(OpClass::Paired);
        let mut v = StopAfter(2);
        let stats = visit_sc(&p, &limits(), false, Reduction::Exhaustive, &mut v).unwrap();
        assert_eq!(stats.explored, 2, "enumeration stops when the visitor says so");
    }

    #[test]
    fn sharded_run_is_identical_at_any_thread_count() {
        let p = sb(OpClass::Unpaired);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 4, 7] {
            let run = visit_sc_sharded(
                &p,
                &limits(),
                false,
                Reduction::SleepSet,
                threads,
                &Summary::default,
                &|_v: &Summary| false,
            )
            .unwrap();
            let mut memories = BTreeSet::new();
            let mut kinds = BTreeSet::new();
            for (v, _) in &run.shards {
                memories.extend(v.memories.iter().cloned());
                kinds.extend(v.race_kinds.iter().copied());
            }
            runs.push((run.stats, memories, kinds, run.shards.len()));
        }
        for r in &runs[1..] {
            assert_eq!(r, &runs[0], "sharded run must not depend on the thread count");
        }
        // And the sharded walk agrees with the unsharded one.
        let mut flat = Summary::default();
        let fs = visit_sc(&p, &limits(), false, Reduction::SleepSet, &mut flat).unwrap();
        assert_eq!(runs[0].0, fs);
        assert_eq!(runs[0].1, flat.memories);
        assert_eq!(runs[0].2, flat.race_kinds);
    }

    #[test]
    fn sharded_early_exit_keeps_a_deterministic_prefix() {
        // Saturate as soon as a shard saw any execution: only shard 0
        // (and nothing after it) may be merged, at any thread count.
        let p = sb(OpClass::Paired);
        for threads in [1usize, 4] {
            let run = visit_sc_sharded(
                &p,
                &limits(),
                false,
                Reduction::Exhaustive,
                threads,
                &Summary::default,
                &|v: &Summary| v.explored > 0,
            )
            .unwrap();
            assert!(run.early_exit);
            assert_eq!(run.shards.len(), 1, "threads={threads}");
            assert!(run.shards[0].0.explored > 0);
        }
    }

    #[test]
    fn shared_limit_applies_across_shards() {
        let p = sb(OpClass::Paired);
        let r = visit_sc_sharded(
            &p,
            &EnumLimits { max_executions: 3, ..EnumLimits::default() },
            false,
            Reduction::Exhaustive,
            2,
            &Summary::default,
            &|_v: &Summary| false,
        );
        match r {
            Err(e) => assert_eq!(e, EnumError::TooManyExecutions { limit: 3 }),
            Ok(_) => panic!("limit must apply across shards"),
        }
    }
}
