//! SC-execution enumeration — the streaming checker pipeline.
//!
//! The enumerator walks an explicit interleaving tree with a **single
//! mutable [`SearchState`]** and an undo journal: each step pushes its
//! effects (thread state, memory, events, relation edges) and pops them
//! on backtrack. Completed executions are fed, one at a time, to an
//! [`ExecutionVisitor`] — nothing is materialized on the default path.
//! The resulting [`Execution`]s carry the relations Herd models are
//! phrased over (`po`, `rf`, `co`, `fr`, dependency relations), ready
//! for the race detectors in [`crate::races`].
//!
//! Three layers compose:
//!
//! 1. [`visit_sc`] — the streaming DFS itself, with incremental relation
//!    maintenance (extend `po`/`co`/`rf`/`fr` on push, retract on pop).
//! 2. [`Reduction::SleepSet`] — sound partial-order reduction: two
//!    pending steps commute when they touch different locations or are
//!    both reads, so only one order of each commuting pair is explored;
//!    skipped subtrees are counted in [`EnumStats::pruned`].
//! 3. [`visit_sc_sharded`] — the top levels of the tree are split into
//!    independent shard jobs run on a thread pool (same discipline as
//!    `hsim_sys::run_matrix`: atomic job index, results merged in shard
//!    order, serial fallback). The shard set is independent of the
//!    thread count, so explored/pruned counts and visitor results are
//!    byte-identical at any `--threads`.
//!
//! [`enumerate_sc`] / [`enumerate_sc_quantum`] survive as collect()
//! visitors over the exhaustive (unreduced) walk — the materializing
//! reference the differential tests compare against.
//!
//! When a *quantum domain* is supplied (the quantum transformation of
//! §3.4.3), quantum loads do not read memory: they are replaced by a
//! conceptual `random()` that is enumerated over the domain, and quantum
//! RMWs degrade to quantum stores. This produces executions of the
//! *quantum-equivalent program* P<sub>q</sub>.

use crate::classes::OpClass;
use crate::program::{Expr, Instr, Loc, Program, Reg, Value};
use crate::relation::Relation;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Kind of dynamic memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An atomic read-modify-write (reads and writes in one event,
    /// per the paper's footnote 1).
    Rmw,
}

impl Access {
    /// Does the event read memory?
    pub fn reads(self) -> bool {
        matches!(self, Access::Read | Access::Rmw)
    }

    /// Does the event write memory?
    pub fn writes(self) -> bool {
        matches!(self, Access::Write | Access::Rmw)
    }
}

/// The write function an event applies to its location, used to decide
/// pairwise commutativity (paper §3.2.3: two writes commute iff
/// performing them in either order yields the same final value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFn {
    /// Overwrite with a constant (plain store / exchange).
    Set(Value),
    /// `old + k` (fetch_add / fetch_sub with negated operand).
    Add(Value),
    /// `old & k`.
    And(Value),
    /// `old | k`.
    Or(Value),
    /// `old ^ k`.
    Xor(Value),
    /// `min(old, k)`.
    Min(Value),
    /// `max(old, k)`.
    Max(Value),
    /// Compare-and-swap — order-sensitive in general.
    Cas,
}

impl WriteFn {
    /// Exact pairwise commutativity for the function families litmus
    /// programs use. `f.commutes_with(g)` iff `f∘g == g∘f` on all
    /// values.
    pub fn commutes_with(self, other: WriteFn) -> bool {
        use WriteFn::*;
        match (self, other) {
            (Add(_), Add(_)) => true,
            (And(_), And(_)) => true,
            (Or(_), Or(_)) => true,
            (Xor(_), Xor(_)) => true,
            (Min(_), Min(_)) => true,
            (Max(_), Max(_)) => true,
            // Two overwrites commute only when they write the same value.
            (Set(a), Set(b)) => a == b,
            // Idempotent-compatible mixed cases are deliberately not
            // special-cased; CAS is order-sensitive.
            _ => false,
        }
    }
}

/// A dynamic memory event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dense event id, indexing the execution's relations.
    pub id: usize,
    /// Issuing thread.
    pub tid: usize,
    /// Index of the instruction within the thread.
    pub iid: usize,
    /// Annotated class.
    pub class: OpClass,
    /// Accessed location.
    pub loc: Loc,
    /// Read/write/RMW.
    pub access: Access,
    /// Value read (reads and RMWs).
    pub rval: Option<Value>,
    /// Value written (writes and RMWs).
    pub wval: Option<Value>,
    /// Write function for commutativity analysis (writes and RMWs).
    pub write_fn: Option<WriteFn>,
}

/// The "result" of an execution (paper §3.2.2: the memory state at the
/// end of the execution; register files are kept as well for
/// litmus-style assertions and for comparing against the relaxed
/// machine).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExecResult {
    /// Final value of every location.
    pub memory: BTreeMap<Loc, Value>,
    /// Final register file of every thread.
    pub regs: Vec<BTreeMap<Reg, Value>>,
}

/// One SC execution with its relations.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Dynamic events, indexed by id.
    pub events: Vec<Event>,
    /// Event ids in SC total order `T`.
    pub order: Vec<usize>,
    /// Final memory + registers.
    pub result: ExecResult,
    /// Program order (transitive).
    pub po: Relation,
    /// Reads-from: source write → read.
    pub rf: Relation,
    /// Coherence order: earlier write → later write, same location
    /// (transitive).
    pub co: Relation,
    /// From-read: read → write co-after the read's source.
    pub fr: Relation,
    /// Data dependency: load/RMW → event using its value.
    pub data_dep: Relation,
    /// Address dependency (always empty for static-address litmus
    /// programs; present for Herd parity).
    pub addr_dep: Relation,
    /// Control dependency: load/RMW → memory event after a dependent
    /// branch.
    pub ctrl_dep: Relation,
    /// Events whose loaded value is observed via [`Instr::Observe`].
    pub observed: Vec<bool>,
}

impl Execution {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the execution has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Herd's `(addr | data | ctrl)` observability relation, extended
    /// with [`Instr::Observe`] sinks encoded as self-loops removed; use
    /// [`Execution::value_observed`] for the flag.
    pub fn obs_dep(&self) -> Relation {
        self.addr_dep.union(&self.data_dep).union(&self.ctrl_dep)
    }

    /// Is the value loaded by event `e` used by another instruction in
    /// its thread (dependency into a later access, or an explicit
    /// observe marker)?
    pub fn value_observed(&self, e: usize) -> bool {
        if self.observed[e] {
            return true;
        }
        let n = self.events.len();
        (0..n).any(|j| self.data_dep.contains(e, j) || self.addr_dep.contains(e, j))
    }

    /// The communication relation `rf | fr | co`.
    pub fn com(&self) -> Relation {
        self.rf.union(&self.fr).union(&self.co)
    }

    /// Events of a class, as a membership vector (for
    /// [`Relation::product`]).
    pub fn class_set(&self, pred: impl Fn(&Event) -> bool) -> Vec<bool> {
        self.events.iter().map(pred).collect()
    }
}

/// Limits and options for enumeration.
#[derive(Debug, Clone)]
pub struct EnumLimits {
    /// Abort after this many complete executions.
    pub max_executions: usize,
    /// Values a quantum `random()` may take, when enumerating the
    /// quantum-equivalent program. Ignored by [`enumerate_sc`]; used by
    /// [`enumerate_sc_quantum`].
    pub quantum_domain: Vec<Value>,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits { max_executions: 250_000, quantum_domain: vec![0, 1, JUNK] }
    }
}

/// A recognizable "could be anything" value for quantum randomness.
pub const JUNK: Value = 0x0BAD_F00D;

/// Enumeration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumError {
    /// The execution count exceeded [`EnumLimits::max_executions`].
    TooManyExecutions {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::TooManyExecutions { limit } => {
                write!(
                    f,
                    "more than {limit} SC executions; raise the limit with \
                     `drfrlx check --max-execs N` (EnumLimits::max_executions)"
                )
            }
        }
    }
}

impl std::error::Error for EnumError {}

/// A streaming consumer of completed SC executions.
///
/// The enumerator calls [`ExecutionVisitor::visit`] once per completed
/// execution, in DFS order, passing a borrowed `Execution` that is torn
/// down when the call returns. Return `false` to stop the enumeration
/// (or, under sharding, the current shard) early — e.g. a race checker
/// whose verdict can no longer change.
pub trait ExecutionVisitor {
    /// Consume one execution; `false` stops the (shard's) enumeration.
    fn visit(&mut self, e: &Execution) -> bool;
}

/// Search-space pruning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Visit every SC interleaving — the materializing-era reference
    /// behavior, kept for differential testing.
    Exhaustive,
    /// Sleep-set partial-order reduction: of two adjacent steps that
    /// touch different locations or are both reads, only one order is
    /// explored. Sound for race verdicts, race kinds and final-memory
    /// result sets (see DESIGN.md "Checker pipeline").
    SleepSet,
}

/// Explored/pruned counts from one enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Complete executions handed to the visitor.
    pub explored: usize,
    /// Subtrees skipped by partial-order reduction (count of pruned
    /// scheduling choices, not of executions under them).
    pub pruned: usize,
}

impl EnumStats {
    /// Accumulate another enumeration's counts.
    pub fn absorb(&mut self, other: EnumStats) {
        self.explored += other.explored;
        self.pruned += other.pruned;
    }
}

/// Enumerate all SC executions of `p`.
///
/// Equivalent to [`visit_sc`] with [`Reduction::Exhaustive`] and a
/// collecting visitor — the materializing reference path.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] if the interleaving count
/// exceeds the limit.
pub fn enumerate_sc(p: &Program, limits: &EnumLimits) -> Result<Vec<Execution>, EnumError> {
    let mut c = Collect::default();
    visit_sc(p, limits, false, Reduction::Exhaustive, &mut c)?;
    Ok(c.0)
}

/// Enumerate all SC executions of the *quantum-equivalent program*
/// P<sub>q</sub> of `p` (paper §3.4.3): quantum loads return every value
/// in [`EnumLimits::quantum_domain`], quantum stores/RMWs write their
/// computed value but quantum RMW loads are likewise randomized.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] if the execution count
/// exceeds the limit.
pub fn enumerate_sc_quantum(p: &Program, limits: &EnumLimits) -> Result<Vec<Execution>, EnumError> {
    let mut c = Collect::default();
    visit_sc(p, limits, true, Reduction::Exhaustive, &mut c)?;
    Ok(c.0)
}

/// The collecting visitor behind [`enumerate_sc`].
#[derive(Default)]
struct Collect(Vec<Execution>);

impl ExecutionVisitor for Collect {
    fn visit(&mut self, e: &Execution) -> bool {
        self.0.push(e.clone());
        true
    }
}

/// Stream every SC execution of `p` (or of P<sub>q</sub> when
/// `quantum`) to `visitor`, in DFS order.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] if the execution count
/// exceeds the limit.
pub fn visit_sc(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    reduction: Reduction,
    visitor: &mut dyn ExecutionVisitor,
) -> Result<EnumStats, EnumError> {
    let counter = AtomicUsize::new(0);
    let mut eng = Engine::new(p, limits, quantum, reduction, visitor, &counter, None);
    eng.node(0, 0)?;
    Ok(eng.stats)
}

/// Result of a sharded enumeration: per-shard visitors in deterministic
/// shard order, plus aggregate counts.
pub struct ShardedRun<V> {
    /// One `(visitor, stats)` per shard actually merged, in shard
    /// (DFS frontier) order. When early exit cut the run short, shards
    /// past the cutoff are absent.
    pub shards: Vec<(V, EnumStats)>,
    /// Aggregate explored/pruned over the merged shards (frontier-level
    /// pruning included).
    pub stats: EnumStats,
    /// Did the saturation predicate cut the run short?
    pub early_exit: bool,
}

/// How many frontier jobs the shard collector aims for. Fixed (not a
/// function of the thread count) so the shard set — and therefore the
/// merged result and the explored/pruned split — is identical at any
/// `--threads`.
const SHARD_TARGET: usize = 64;
/// Deepest frontier cut considered.
const SHARD_MAX_DEPTH: usize = 6;

/// Stream executions to per-shard visitors, in parallel.
///
/// The top levels of the interleaving tree are cut into
/// [`SHARD_TARGET`]-ish independent jobs (state snapshot + sleep set),
/// collected in DFS order. Workers claim jobs off an atomic index —
/// the same pool discipline as `hsim_sys::run_matrix` — and results
/// merge in shard order, so the outcome is independent of `threads`
/// and of scheduling.
///
/// `make` creates one fresh visitor per shard; `saturated` inspects a
/// finished shard's visitor and returns `true` when that shard alone
/// proves the final answer can no longer change (e.g. every attainable
/// race kind was found). The merged result is then shards
/// `0..=cutoff`, where `cutoff` is the *smallest* saturating shard
/// index — a deterministic rule: the running cutoff only decreases, so
/// every shard at or below the final cutoff is always run and every
/// shard above it is always discarded.
///
/// # Errors
///
/// Returns [`EnumError::TooManyExecutions`] when the executions
/// explored across all shards (a shared counter) exceed the limit.
pub fn visit_sc_sharded<V: ExecutionVisitor + Send>(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    reduction: Reduction,
    threads: usize,
    make: &(dyn Fn() -> V + Sync),
    saturated: &(dyn Fn(&V) -> bool + Sync),
) -> Result<ShardedRun<V>, EnumError> {
    let (shards, frontier_pruned) = collect_frontier(p, limits, quantum, reduction);
    let counter = AtomicUsize::new(0);
    let nshards = shards.len();
    let threads = threads.clamp(1, nshards.max(1));

    let mut merged: Vec<(V, EnumStats)> = Vec::new();
    let mut early_exit = false;
    if threads == 1 {
        for shard in shards {
            let mut v = make();
            let stats = run_shard(p, limits, quantum, reduction, shard, &mut v, &counter)?;
            let sat = saturated(&v);
            merged.push((v, stats));
            if sat {
                early_exit = true;
                break;
            }
        }
    } else {
        let next = AtomicUsize::new(0);
        let cutoff = AtomicUsize::new(usize::MAX);
        type Slot<V> = Mutex<Option<Result<(V, EnumStats), EnumError>>>;
        let slots: Vec<Slot<V>> = (0..nshards).map(|_| Mutex::new(None)).collect();
        let shards = &shards;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= nshards {
                        break;
                    }
                    if j > cutoff.load(Ordering::Relaxed) {
                        continue;
                    }
                    let mut v = make();
                    let r = run_shard(
                        p,
                        limits,
                        quantum,
                        reduction,
                        shards[j].clone(),
                        &mut v,
                        &counter,
                    );
                    let r = r.map(|stats| {
                        if saturated(&v) {
                            cutoff.fetch_min(j, Ordering::Relaxed);
                        }
                        (v, stats)
                    });
                    *slots[j].lock().unwrap() = Some(r);
                });
            }
        });
        let cut = cutoff.load(Ordering::Relaxed);
        early_exit = cut != usize::MAX;
        for (j, slot) in slots.into_iter().enumerate() {
            if j > cut {
                break;
            }
            let r = slot.into_inner().unwrap().expect("shards at or below the cutoff always run");
            merged.push(r?);
        }
    }
    let mut stats = EnumStats { explored: 0, pruned: frontier_pruned };
    for (_, s) in &merged {
        stats.absorb(*s);
    }
    Ok(ShardedRun { shards: merged, stats, early_exit })
}

/// One frontier job: a search-state snapshot plus the sleep set it was
/// captured under.
#[derive(Clone)]
struct Shard {
    st: SearchState,
    sleep: u64,
}

/// Cut the top of the interleaving tree into shard jobs, deepening the
/// cut until [`SHARD_TARGET`] jobs exist (or the tree runs out).
/// Returns the jobs in DFS order plus the scheduling choices pruned at
/// frontier levels.
fn collect_frontier(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    reduction: Reduction,
) -> (Vec<Shard>, usize) {
    let mut depth = 1;
    loop {
        let counter = AtomicUsize::new(0);
        let mut sink = Sink;
        let mut eng = Engine::new(p, limits, quantum, reduction, &mut sink, &counter, Some(depth));
        eng.node(0, 0).expect("frontier collection emits no executions");
        let shards = std::mem::take(&mut eng.shards);
        let pruned = eng.stats.pruned;
        if shards.len() >= SHARD_TARGET || depth >= SHARD_MAX_DEPTH {
            return (shards, pruned);
        }
        depth += 1;
    }
}

/// Visitor for passes that never emit (frontier collection).
struct Sink;

impl ExecutionVisitor for Sink {
    fn visit(&mut self, _e: &Execution) -> bool {
        unreachable!("frontier collection does not complete executions")
    }
}

fn run_shard(
    p: &Program,
    limits: &EnumLimits,
    quantum: bool,
    reduction: Reduction,
    shard: Shard,
    visitor: &mut dyn ExecutionVisitor,
    counter: &AtomicUsize,
) -> Result<EnumStats, EnumError> {
    let mut eng = Engine::new(p, limits, quantum, reduction, visitor, counter, None);
    eng.st = shard.st;
    eng.node(shard.sleep, 0)?;
    Ok(eng.stats)
}

#[derive(Clone)]
struct ThreadState {
    pc: usize,
    regs: BTreeMap<Reg, Value>,
    /// For each register, the set of load events whose values flow in.
    taint: BTreeMap<Reg, BTreeSet<usize>>,
    /// Loads feeding branch conditions seen so far (ctrl sources).
    ctrl: BTreeSet<usize>,
}

/// The single mutable search state. Relations live over a carrier
/// pre-sized to the program's memory-instruction count; a completed
/// execution takes their prefix restriction.
#[derive(Clone)]
struct SearchState {
    threads: Vec<ThreadState>,
    memory: BTreeMap<Loc, Value>,
    events: Vec<Event>,
    order: Vec<usize>,
    /// Per location: write event ids in coherence (SC) order.
    writes: BTreeMap<Loc, Vec<usize>>,
    /// Per location: read event ids in SC order (for `fr` maintenance:
    /// a new write is `fr`-after every existing read of its location).
    reads: BTreeMap<Loc, Vec<usize>>,
    /// Per thread: its event ids in program order (for `po` pushes).
    thread_events: Vec<Vec<usize>>,
    observed: BTreeSet<usize>,
    po: Relation,
    rf: Relation,
    co: Relation,
    fr: Relation,
    data_dep: Relation,
    ctrl_dep: Relation,
}

/// Which relation an undo-journal edge belongs to.
#[derive(Clone, Copy)]
enum RelId {
    Po,
    Rf,
    Co,
    Fr,
    Data,
    Ctrl,
}

/// Undo journal for one tree node: everything a step changed, so
/// backtracking is a pop instead of a clone-per-branch.
#[derive(Default)]
struct Frame {
    /// Thread states saved on first touch within this frame.
    saved_threads: Vec<(usize, ThreadState)>,
    /// `(loc, previous value)` saved on first overwrite within this
    /// frame; restored in reverse.
    saved_memory: Vec<(Loc, Value)>,
    events_pushed: usize,
    writes_pushed: Vec<Loc>,
    reads_pushed: Vec<Loc>,
    thread_events_pushed: Vec<usize>,
    observed_added: Vec<usize>,
    edges: Vec<(RelId, usize, usize)>,
}

fn expr_taint(e: &Expr, t: &ThreadState) -> BTreeSet<usize> {
    let mut regs = Vec::new();
    e.regs_read(&mut regs);
    let mut out = BTreeSet::new();
    for r in regs {
        if let Some(s) = t.taint.get(&r) {
            out.extend(s.iter().copied());
        }
    }
    out
}

/// What [`Engine::drain`] stopped on.
enum Drained {
    /// No local-deterministic instruction is pending anywhere.
    Done,
    /// A quantum load (under the quantum transformation) — a local
    /// *choice* point the caller must branch over.
    QuantumLoad { tid: usize, dst: Reg },
}

struct Engine<'a> {
    p: &'a Program,
    limits: &'a EnumLimits,
    quantum: bool,
    por: bool,
    st: SearchState,
    visitor: &'a mut dyn ExecutionVisitor,
    /// Executions emitted so far, shared across shards so the limit is
    /// a global resource bound.
    counter: &'a AtomicUsize,
    stats: EnumStats,
    /// Set when the visitor returns `false`; unwinds without error.
    stop: bool,
    /// `Some(d)`: frontier-collection mode — cut at depth `d`, pushing
    /// shard jobs instead of exploring.
    frontier_depth: Option<usize>,
    shards: Vec<Shard>,
}

impl<'a> Engine<'a> {
    fn new(
        p: &'a Program,
        limits: &'a EnumLimits,
        quantum: bool,
        reduction: Reduction,
        visitor: &'a mut dyn ExecutionVisitor,
        counter: &'a AtomicUsize,
        frontier_depth: Option<usize>,
    ) -> Engine<'a> {
        // Carrier bound: every memory instruction runs at most once
        // (pcs only move forward), and the quantum transformation never
        // adds events.
        let cap = p.threads().iter().flat_map(|t| &t.instrs).filter(|i| i.is_memory()).count();
        let st = SearchState {
            threads: p
                .threads()
                .iter()
                .map(|_| ThreadState {
                    pc: 0,
                    regs: BTreeMap::new(),
                    taint: BTreeMap::new(),
                    ctrl: BTreeSet::new(),
                })
                .collect(),
            memory: (0..p.num_locs() as u32).map(|l| (Loc(l), p.init_value(Loc(l)))).collect(),
            events: Vec::new(),
            order: Vec::new(),
            writes: BTreeMap::new(),
            reads: BTreeMap::new(),
            thread_events: vec![Vec::new(); p.threads().len()],
            observed: BTreeSet::new(),
            po: Relation::empty(cap),
            rf: Relation::empty(cap),
            co: Relation::empty(cap),
            fr: Relation::empty(cap),
            data_dep: Relation::empty(cap),
            ctrl_dep: Relation::empty(cap),
        };
        Engine {
            p,
            limits,
            quantum,
            por: reduction == Reduction::SleepSet,
            st,
            visitor,
            counter,
            stats: EnumStats::default(),
            stop: false,
            frontier_depth,
            shards: Vec::new(),
        }
    }

    fn save_thread(&mut self, frame: &mut Frame, tid: usize) {
        if !frame.saved_threads.iter().any(|(t, _)| *t == tid) {
            frame.saved_threads.push((tid, self.st.threads[tid].clone()));
        }
    }

    fn save_memory(&mut self, frame: &mut Frame, loc: Loc) {
        if !frame.saved_memory.iter().any(|(l, _)| *l == loc) {
            frame.saved_memory.push((loc, *self.st.memory.get(&loc).unwrap_or(&0)));
        }
    }

    fn add_edge(&mut self, frame: &mut Frame, rel: RelId, a: usize, b: usize) {
        let r = match rel {
            RelId::Po => &mut self.st.po,
            RelId::Rf => &mut self.st.rf,
            RelId::Co => &mut self.st.co,
            RelId::Fr => &mut self.st.fr,
            RelId::Data => &mut self.st.data_dep,
            RelId::Ctrl => &mut self.st.ctrl_dep,
        };
        debug_assert!(!r.contains(a, b), "incremental edges are inserted exactly once");
        r.insert(a, b);
        frame.edges.push((rel, a, b));
    }

    fn undo(&mut self, frame: Frame) {
        for (rel, a, b) in frame.edges.into_iter().rev() {
            let r = match rel {
                RelId::Po => &mut self.st.po,
                RelId::Rf => &mut self.st.rf,
                RelId::Co => &mut self.st.co,
                RelId::Fr => &mut self.st.fr,
                RelId::Data => &mut self.st.data_dep,
                RelId::Ctrl => &mut self.st.ctrl_dep,
            };
            r.remove(a, b);
        }
        for e in frame.observed_added {
            self.st.observed.remove(&e);
        }
        for tid in frame.thread_events_pushed.into_iter().rev() {
            self.st.thread_events[tid].pop();
        }
        for loc in frame.writes_pushed.into_iter().rev() {
            self.st.writes.get_mut(&loc).expect("pushed write list exists").pop();
        }
        for loc in frame.reads_pushed.into_iter().rev() {
            self.st.reads.get_mut(&loc).expect("pushed read list exists").pop();
        }
        let new_len = self.st.events.len() - frame.events_pushed;
        self.st.events.truncate(new_len);
        self.st.order.truncate(new_len);
        for (loc, v) in frame.saved_memory.into_iter().rev() {
            self.st.memory.insert(loc, v);
        }
        for (tid, t) in frame.saved_threads {
            self.st.threads[tid] = t;
        }
    }

    /// Register a new event: relation pushes, side lists, order.
    /// `data`/`ctrl` are the event's dependency sources.
    fn push_event(
        &mut self,
        frame: &mut Frame,
        ev: Event,
        data: &BTreeSet<usize>,
        ctrl: &BTreeSet<usize>,
    ) {
        let id = ev.id;
        let tid = ev.tid;
        let loc = ev.loc;
        let access = ev.access;
        // po: every earlier event of the thread precedes the new one
        // (events are created in program order, so this stays the full
        // transitive po).
        let prior = self.st.thread_events[tid].clone();
        for a in prior {
            self.add_edge(frame, RelId::Po, a, id);
        }
        self.st.thread_events[tid].push(id);
        frame.thread_events_pushed.push(tid);
        if access.reads() {
            // rf: read from the coherence-latest write, if any. Reads
            // of the initial value have no rf edge; every later write
            // of the location will add an fr edge instead.
            if let Some(&w) = self.st.writes.get(&loc).and_then(|ws| ws.last()) {
                self.add_edge(frame, RelId::Rf, w, id);
            }
            self.st.reads.entry(loc).or_default().push(id);
            frame.reads_pushed.push(loc);
        }
        if access.writes() {
            // co: after every existing write of the location; fr: every
            // existing read of the location read from a co-earlier
            // write (or the initial value), so it is fr-before the new
            // write.
            let ws = self.st.writes.get(&loc).cloned().unwrap_or_default();
            for w in ws {
                self.add_edge(frame, RelId::Co, w, id);
            }
            let rs = self.st.reads.get(&loc).cloned().unwrap_or_default();
            for r in rs {
                if r != id {
                    self.add_edge(frame, RelId::Fr, r, id);
                }
            }
            self.st.writes.entry(loc).or_default().push(id);
            frame.writes_pushed.push(loc);
        }
        for &src in data {
            self.add_edge(frame, RelId::Data, src, id);
        }
        for &src in ctrl {
            self.add_edge(frame, RelId::Ctrl, src, id);
        }
        self.st.events.push(ev);
        self.st.order.push(id);
        frame.events_pushed += 1;
    }

    /// Phase 1: drain local-deterministic instructions of every thread;
    /// they commute with everything, so running them eagerly prunes
    /// redundant interleavings. Stops at a quantum load (a local choice
    /// point the caller branches over).
    fn drain(&mut self, frame: &mut Frame) -> Drained {
        loop {
            let mut progressed = false;
            for tid in 0..self.st.threads.len() {
                loop {
                    let p = self.p;
                    let pc = self.st.threads[tid].pc;
                    let Some(instr) = p.threads()[tid].instrs.get(pc) else { break };
                    match instr {
                        Instr::Assign { dst, expr } => {
                            let v = expr.eval(&self.st.threads[tid].regs);
                            let taint = expr_taint(expr, &self.st.threads[tid]);
                            self.save_thread(frame, tid);
                            let t = &mut self.st.threads[tid];
                            t.regs.insert(*dst, v);
                            t.taint.insert(*dst, taint);
                            t.pc += 1;
                            progressed = true;
                        }
                        Instr::BranchOn { cond } => {
                            let taint = expr_taint(cond, &self.st.threads[tid]);
                            self.save_thread(frame, tid);
                            let t = &mut self.st.threads[tid];
                            t.ctrl.extend(taint);
                            t.pc += 1;
                            progressed = true;
                        }
                        Instr::Observe { expr } => {
                            let taint = expr_taint(expr, &self.st.threads[tid]);
                            self.save_thread(frame, tid);
                            for e in taint {
                                if self.st.observed.insert(e) {
                                    frame.observed_added.push(e);
                                }
                            }
                            self.st.threads[tid].pc += 1;
                            progressed = true;
                        }
                        Instr::JumpIfZero { cond, skip } => {
                            let v = cond.eval(&self.st.threads[tid].regs);
                            let taint = expr_taint(cond, &self.st.threads[tid]);
                            self.save_thread(frame, tid);
                            let t = &mut self.st.threads[tid];
                            t.ctrl.extend(taint);
                            t.pc += if v == 0 { skip + 1 } else { 1 };
                            progressed = true;
                        }
                        Instr::Load { class: OpClass::Quantum, dst, .. } if self.quantum => {
                            return Drained::QuantumLoad { tid, dst: *dst };
                        }
                        _ => break,
                    }
                }
            }
            if !progressed {
                return Drained::Done;
            }
        }
    }

    /// The next memory operation of `tid`, as `(loc, writes)` — the
    /// independence signature for sleep sets.
    fn next_op(&self, tid: usize) -> (Loc, bool) {
        let pc = self.st.threads[tid].pc;
        match &self.p.threads()[tid].instrs[pc] {
            Instr::Load { loc, .. } => (*loc, false),
            Instr::Store { loc, .. } => (*loc, true),
            Instr::Rmw { loc, .. } => (*loc, true),
            _ => unreachable!("next_op called on a thread not at a memory instruction"),
        }
    }

    /// Do two pending steps commute? Yes iff they touch different
    /// locations or are both reads — swapping such adjacent steps
    /// changes nothing the models look at (see DESIGN.md).
    fn independent(a: (Loc, bool), b: (Loc, bool)) -> bool {
        a.0 != b.0 || (!a.1 && !b.1)
    }

    /// One tree node: drain locals, then branch on which thread moves.
    /// `sleep` is the sleep set (bitmask of enabled threads whose moves
    /// are covered by an already-explored sibling order); `depth`
    /// counts choice points for frontier collection.
    fn node(&mut self, sleep: u64, depth: usize) -> Result<(), EnumError> {
        if self.stop {
            return Ok(());
        }
        let mut frame = Frame::default();
        match self.drain(&mut frame) {
            Drained::Done => {}
            Drained::QuantumLoad { tid, dst } => {
                // Quantum transformation: ri = random(). No memory
                // event; the load is gone in Pq. A local choice, so the
                // sleep set carries through unchanged.
                let limits = self.limits;
                for &v in &limits.quantum_domain {
                    let mut f2 = Frame::default();
                    self.save_thread(&mut f2, tid);
                    let t = &mut self.st.threads[tid];
                    t.regs.insert(dst, v);
                    t.taint.insert(dst, BTreeSet::new());
                    t.pc += 1;
                    self.node(sleep, depth + 1)?;
                    self.undo(f2);
                    if self.stop {
                        break;
                    }
                }
                self.undo(frame);
                return Ok(());
            }
        }

        let p = self.p;
        let terminal = self
            .st
            .threads
            .iter()
            .enumerate()
            .all(|(tid, t)| t.pc >= p.threads()[tid].instrs.len());

        // Frontier-collection mode: cut here instead of exploring.
        if let Some(d) = self.frontier_depth {
            if terminal || depth >= d {
                self.shards.push(Shard { st: self.st.clone(), sleep });
                self.undo(frame);
                return Ok(());
            }
        }

        if terminal {
            self.emit()?;
            self.undo(frame);
            return Ok(());
        }

        // Phase 2: branch over which thread performs its next memory
        // event. After the drain every live thread sits at one, so
        // transitions are exactly the enabled threads.
        let enabled: Vec<usize> = (0..self.st.threads.len())
            .filter(|&tid| {
                let pc = self.st.threads[tid].pc;
                p.threads()[tid].instrs.get(pc).is_some_and(|i| i.is_memory())
            })
            .collect();
        let mut slept = sleep;
        for &tid in &enabled {
            if self.por && (slept >> tid) & 1 == 1 {
                // A sibling order already covers every trace through
                // this move — prune the subtree.
                self.stats.pruned += 1;
                continue;
            }
            let child_sleep = if self.por {
                let my = self.next_op(tid);
                let mut cs = 0u64;
                for &u in &enabled {
                    if (slept >> u) & 1 == 1 && Self::independent(self.next_op(u), my) {
                        cs |= 1 << u;
                    }
                }
                cs
            } else {
                0
            };
            self.step(tid, child_sleep, depth)?;
            if self.stop {
                break;
            }
            if self.por {
                slept |= 1 << tid;
            }
        }
        self.undo(frame);
        Ok(())
    }

    /// Take thread `tid`'s pending memory step and recurse. Quantum
    /// stores/RMWs branch over the domain internally (every branch is
    /// the same scheduling choice, so they share one sleep set).
    fn step(&mut self, tid: usize, child_sleep: u64, depth: usize) -> Result<(), EnumError> {
        let p = self.p;
        let pc = self.st.threads[tid].pc;
        let instr = &p.threads()[tid].instrs[pc];
        if self.quantum && instr.class() == Some(OpClass::Quantum) {
            // Quantum transformation (§3.4.3): quantum stores write
            // random(); a quantum RMW's load returns random() and its
            // store writes random().
            let limits = self.limits;
            match instr {
                Instr::Store { class, loc, .. } => {
                    for &v in &limits.quantum_domain {
                        let mut f = Frame::default();
                        self.quantum_store_event(&mut f, tid, *class, *loc, v, None);
                        self.node(child_sleep, depth + 1)?;
                        self.undo(f);
                        if self.stop {
                            break;
                        }
                    }
                    return Ok(());
                }
                Instr::Rmw { class, loc, dst, .. } => {
                    'outer: for &old in &limits.quantum_domain {
                        for &new in &limits.quantum_domain {
                            let mut f = Frame::default();
                            self.quantum_store_event(
                                &mut f,
                                tid,
                                *class,
                                *loc,
                                new,
                                Some((*dst, old)),
                            );
                            self.node(child_sleep, depth + 1)?;
                            self.undo(f);
                            if self.stop {
                                break 'outer;
                            }
                        }
                    }
                    return Ok(());
                }
                _ => {}
            }
        }
        let mut f = Frame::default();
        self.perform(&mut f, tid);
        self.node(child_sleep, depth + 1)?;
        self.undo(f);
        Ok(())
    }

    /// Perform thread `tid`'s next memory instruction, journaling into
    /// `frame`.
    fn perform(&mut self, frame: &mut Frame, tid: usize) {
        let p = self.p;
        let pc = self.st.threads[tid].pc;
        let instr = &p.threads()[tid].instrs[pc];
        let id = self.st.events.len();
        let ctrl = self.st.threads[tid].ctrl.clone();
        self.save_thread(frame, tid);
        match instr {
            Instr::Load { class, loc, dst } => {
                let v = *self.st.memory.get(loc).unwrap_or(&0);
                self.push_event(
                    frame,
                    Event {
                        id,
                        tid,
                        iid: pc,
                        class: *class,
                        loc: *loc,
                        access: Access::Read,
                        rval: Some(v),
                        wval: None,
                        write_fn: None,
                    },
                    &BTreeSet::new(),
                    &ctrl,
                );
                let t = &mut self.st.threads[tid];
                t.regs.insert(*dst, v);
                t.taint.insert(*dst, BTreeSet::from([id]));
            }
            Instr::Store { class, loc, val } => {
                let v = val.eval(&self.st.threads[tid].regs);
                let data = expr_taint(val, &self.st.threads[tid]);
                self.save_memory(frame, *loc);
                self.push_event(
                    frame,
                    Event {
                        id,
                        tid,
                        iid: pc,
                        class: *class,
                        loc: *loc,
                        access: Access::Write,
                        rval: None,
                        wval: Some(v),
                        write_fn: Some(WriteFn::Set(v)),
                    },
                    &data,
                    &ctrl,
                );
                self.st.memory.insert(*loc, v);
            }
            Instr::Rmw { class, loc, op, operand, operand2, dst } => {
                let old = *self.st.memory.get(loc).unwrap_or(&0);
                let k = operand.eval(&self.st.threads[tid].regs);
                let k2 = operand2.eval(&self.st.threads[tid].regs);
                let new = op.apply(old, k, k2);
                let mut data = expr_taint(operand, &self.st.threads[tid]);
                data.extend(expr_taint(operand2, &self.st.threads[tid]));
                let wf = match op {
                    crate::program::RmwOp::FetchAdd => WriteFn::Add(k),
                    crate::program::RmwOp::FetchSub => WriteFn::Add(k.wrapping_neg()),
                    crate::program::RmwOp::FetchAnd => WriteFn::And(k),
                    crate::program::RmwOp::FetchOr => WriteFn::Or(k),
                    crate::program::RmwOp::FetchXor => WriteFn::Xor(k),
                    crate::program::RmwOp::FetchMin => WriteFn::Min(k),
                    crate::program::RmwOp::FetchMax => WriteFn::Max(k),
                    crate::program::RmwOp::Exchange => WriteFn::Set(k),
                    crate::program::RmwOp::Cas => WriteFn::Cas,
                };
                self.save_memory(frame, *loc);
                self.push_event(
                    frame,
                    Event {
                        id,
                        tid,
                        iid: pc,
                        class: *class,
                        loc: *loc,
                        access: Access::Rmw,
                        rval: Some(old),
                        wval: Some(new),
                        write_fn: Some(wf),
                    },
                    &data,
                    &ctrl,
                );
                self.st.memory.insert(*loc, new);
                let t = &mut self.st.threads[tid];
                t.regs.insert(*dst, old);
                t.taint.insert(*dst, BTreeSet::from([id]));
            }
            _ => unreachable!("perform called on non-memory instruction"),
        }
        self.st.threads[tid].pc += 1;
    }

    /// Emit a quantum store event writing `wval` (the transformed form
    /// of a quantum store or RMW), journaling into `frame`.
    fn quantum_store_event(
        &mut self,
        frame: &mut Frame,
        tid: usize,
        class: OpClass,
        loc: Loc,
        wval: Value,
        dst: Option<(Reg, Value)>,
    ) {
        let pc = self.st.threads[tid].pc;
        let id = self.st.events.len();
        let ctrl = self.st.threads[tid].ctrl.clone();
        self.save_thread(frame, tid);
        self.save_memory(frame, loc);
        self.push_event(
            frame,
            Event {
                id,
                tid,
                iid: pc,
                class,
                loc,
                access: Access::Write,
                rval: None,
                wval: Some(wval),
                write_fn: Some(WriteFn::Set(wval)),
            },
            &BTreeSet::new(),
            &ctrl,
        );
        self.st.memory.insert(loc, wval);
        if let Some((r, v)) = dst {
            let t = &mut self.st.threads[tid];
            t.regs.insert(r, v);
            t.taint.insert(r, BTreeSet::new());
        }
        self.st.threads[tid].pc += 1;
    }

    /// A complete execution: snapshot the state into an [`Execution`]
    /// and hand it to the visitor.
    fn emit(&mut self) -> Result<(), EnumError> {
        let seen = self.counter.fetch_add(1, Ordering::Relaxed);
        if seen >= self.limits.max_executions {
            return Err(EnumError::TooManyExecutions { limit: self.limits.max_executions });
        }
        self.stats.explored += 1;
        let n = self.st.events.len();
        let exec = Execution {
            events: self.st.events.clone(),
            order: self.st.order.clone(),
            result: ExecResult {
                memory: self.st.memory.clone(),
                regs: self.st.threads.iter().map(|t| t.regs.clone()).collect(),
            },
            po: self.st.po.restrict(n),
            rf: self.st.rf.restrict(n),
            co: self.st.co.restrict(n),
            fr: self.st.fr.restrict(n),
            data_dep: self.st.data_dep.restrict(n),
            addr_dep: Relation::empty(n),
            ctrl_dep: self.st.ctrl_dep.restrict(n),
            observed: (0..n).map(|e| self.st.observed.contains(&e)).collect(),
        };
        if !self.visitor.visit(&exec) {
            self.stop = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RmwOp;

    fn limits() -> EnumLimits {
        EnumLimits::default()
    }

    /// Store buffering: two threads, each stores then loads the other
    /// location. 4 memory ops → C(4,2) = 6 interleavings.
    fn sb(class: OpClass) -> Program {
        let mut p = Program::new("sb");
        {
            let mut t = p.thread();
            t.store(class, "x", 1);
            let r = t.load(class, "y");
            t.observe(r);
        }
        {
            let mut t = p.thread();
            t.store(class, "y", 1);
            let r = t.load(class, "x");
            t.observe(r);
        }
        p.build()
    }

    #[test]
    fn sb_has_six_interleavings() {
        let execs = enumerate_sc(&sb(OpClass::Paired), &limits()).unwrap();
        assert_eq!(execs.len(), 6);
    }

    #[test]
    fn sb_never_observes_both_zero_under_sc() {
        let execs = enumerate_sc(&sb(OpClass::Paired), &limits()).unwrap();
        for e in &execs {
            let r0 = *e.result.regs[0].get(&Reg(0)).unwrap();
            let r1 = *e.result.regs[1].get(&Reg(0)).unwrap();
            assert!(!(r0 == 0 && r1 == 0), "SC forbids the store-buffering outcome");
        }
        // But the three other outcomes all appear.
        let outcomes: BTreeSet<(Value, Value)> = execs
            .iter()
            .map(|e| {
                (*e.result.regs[0].get(&Reg(0)).unwrap(), *e.result.regs[1].get(&Reg(0)).unwrap())
            })
            .collect();
        assert_eq!(outcomes, BTreeSet::from([(0, 1), (1, 0), (1, 1)]));
    }

    #[test]
    fn rf_points_reads_at_their_writes() {
        let mut p = Program::new("wr");
        p.thread().store(OpClass::Data, "x", 7);
        {
            let mut t = p.thread();
            t.load(OpClass::Data, "x");
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert_eq!(execs.len(), 2);
        for e in &execs {
            let read = e.events.iter().find(|ev| ev.access == Access::Read).unwrap();
            let write = e.events.iter().find(|ev| ev.access == Access::Write).unwrap();
            if read.rval == Some(7) {
                assert!(e.rf.contains(write.id, read.id));
                assert!(!e.fr.contains(read.id, write.id));
            } else {
                assert_eq!(read.rval, Some(0), "reads init");
                assert!(e.rf.is_empty());
                assert!(e.fr.contains(read.id, write.id));
            }
        }
    }

    #[test]
    fn co_orders_same_location_writes() {
        let mut p = Program::new("ww");
        p.thread().store(OpClass::Data, "x", 1);
        p.thread().store(OpClass::Data, "x", 2);
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert_eq!(execs.len(), 2);
        for e in &execs {
            assert_eq!(e.co.len(), 1);
            let (first, last) = e.co.iter_pairs().next().unwrap();
            assert_eq!(e.result.memory.values().next().copied(), e.events[last].wval);
            assert!(
                e.order.iter().position(|&x| x == first).unwrap()
                    < e.order.iter().position(|&x| x == last).unwrap()
            );
        }
    }

    #[test]
    fn rmw_is_atomic_in_sc_enumeration() {
        // Two fetch-adds never lose an update under SC.
        let mut p = Program::new("inc");
        p.thread().rmw(OpClass::Paired, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Paired, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        let c = p.find_loc("c").unwrap();
        let execs = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(execs.len(), 2);
        for e in &execs {
            assert_eq!(e.result.memory[&c], 2);
        }
    }

    #[test]
    fn data_deps_flow_through_assigns() {
        let mut p = Program::new("dep");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Data, "x");
            let r2 = t.assign(Expr::bin(crate::program::BinOp::Add, r.into(), 1.into()));
            t.store(OpClass::Data, "y", r2);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert_eq!(execs.len(), 1);
        let e = &execs[0];
        assert!(e.data_dep.contains(0, 1), "load -> store data dep");
        assert!(e.value_observed(0));
    }

    #[test]
    fn ctrl_deps_mark_later_accesses() {
        let mut p = Program::new("ctrl");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Data, "x");
            t.branch_on(r);
            t.store(OpClass::Data, "y", 1);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        let e = &execs[0];
        assert!(e.ctrl_dep.contains(0, 1));
        assert!(!e.data_dep.contains(0, 1));
        // ctrl alone does not make the value "observed" in Herd's
        // value-observability sense, but obs_dep includes it.
        assert!(e.obs_dep().contains(0, 1));
    }

    #[test]
    fn observe_marks_loads() {
        let mut p = Program::new("obs");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Commutative, "x");
            t.observe(r);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert!(execs[0].value_observed(0));
    }

    #[test]
    fn unobserved_load_is_unobserved() {
        let mut p = Program::new("noobs");
        {
            let mut t = p.thread();
            let _ = t.load(OpClass::Commutative, "x");
            t.store(OpClass::Data, "y", 1);
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        assert!(!execs[0].value_observed(0));
    }

    #[test]
    fn quantum_transformation_randomizes_loads() {
        let mut p = Program::new("q");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Quantum, "x");
            t.observe(r);
        }
        let p = p.build();
        // Plain SC: single execution reading 0.
        let sc = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(sc.len(), 1);
        assert_eq!(sc[0].events.len(), 1);
        // Quantum-equivalent: the load vanishes, one execution per
        // domain value, register takes each.
        let q = enumerate_sc_quantum(&p, &limits()).unwrap();
        assert_eq!(q.len(), 3);
        for e in &q {
            assert!(e.events.is_empty(), "quantum load is not a memory event in Pq");
        }
        let vals: BTreeSet<Value> =
            q.iter().map(|e| *e.result.regs[0].get(&Reg(0)).unwrap()).collect();
        assert_eq!(vals, BTreeSet::from([0, 1, JUNK]));
    }

    #[test]
    fn quantum_rmw_becomes_randomized_store() {
        let mut p = Program::new("qrmw");
        p.thread().rmw(OpClass::Quantum, "c", RmwOp::FetchAdd, 1);
        let p = p.build();
        let c = p.find_loc("c").unwrap();
        let q = enumerate_sc_quantum(&p, &limits()).unwrap();
        // 3 random loaded values × 3 random written values.
        assert_eq!(q.len(), 9);
        for e in &q {
            assert_eq!(e.events.len(), 1);
            assert_eq!(e.events[0].access, Access::Write);
            assert_eq!(e.events[0].class, OpClass::Quantum);
        }
        let finals: BTreeSet<Value> = q.iter().map(|e| e.result.memory[&c]).collect();
        assert_eq!(finals, BTreeSet::from([0, 1, JUNK]));
    }

    #[test]
    fn execution_limit_enforced() {
        let mut p = Program::new("big");
        for _ in 0..3 {
            let mut t = p.thread();
            for _ in 0..4 {
                t.store(OpClass::Data, "x", 1);
            }
        }
        let err =
            enumerate_sc(&p.build(), &EnumLimits { max_executions: 10, ..EnumLimits::default() })
                .unwrap_err();
        assert_eq!(err, EnumError::TooManyExecutions { limit: 10 });
    }

    #[test]
    fn conditional_body_skipped_when_zero() {
        let mut p = Program::new("cond");
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Paired, "flag");
            t.if_nz(r, |t| {
                t.store(OpClass::Data, "x", 1);
            });
            t.store(OpClass::Data, "y", 2);
        }
        let p = p.build();
        let execs = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(execs.len(), 1);
        let e = &execs[0];
        // flag reads 0 → the x store is skipped, the y store executes.
        assert_eq!(e.events.len(), 2);
        assert!(e.events.iter().all(|ev| p.loc_name(ev.loc) != "x"));
        // Control dependency from the flag load onto the y store.
        assert!(e.ctrl_dep.contains(0, 1));
    }

    #[test]
    fn conditional_body_runs_when_nonzero() {
        let mut p = Program::new("cond2");
        p.set_init("flag", 1);
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Paired, "flag");
            t.if_nz(r, |t| {
                t.store(OpClass::Data, "x", 1);
            });
        }
        let p = p.build();
        let e = &enumerate_sc(&p, &limits()).unwrap()[0];
        assert_eq!(e.events.len(), 2);
        let x = p.find_loc("x").unwrap();
        assert_eq!(e.result.memory[&x], 1);
    }

    #[test]
    fn conditional_mp_is_race_free() {
        // With real control flow, the classic message-passing idiom has
        // no data race in any SC execution: the data read only occurs
        // after the paired flag read returns 1, which orders it.
        let mut p = Program::new("mp_cond");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 42);
            t.store(OpClass::Paired, "flag", 1);
        }
        {
            let mut t = p.thread();
            let f = t.load(OpClass::Paired, "flag");
            t.if_nz(f, |t| {
                let d = t.load(OpClass::Data, "x");
                t.observe(d);
            });
        }
        let execs = enumerate_sc(&p.build(), &limits()).unwrap();
        for e in &execs {
            assert!(
                crate::races::analyze(e).is_race_free(),
                "conditional MP must be race-free in every SC execution"
            );
        }
    }

    #[test]
    fn po_is_transitive_and_intra_thread() {
        let mut p = Program::new("po");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "a", 1);
            t.store(OpClass::Data, "b", 1);
            t.store(OpClass::Data, "c", 1);
        }
        let e = &enumerate_sc(&p.build(), &limits()).unwrap()[0];
        assert!(e.po.contains(0, 1) && e.po.contains(1, 2) && e.po.contains(0, 2));
        assert!(!e.po.contains(2, 0));
        assert!(e.po.is_acyclic());
    }

    // ---- streaming / POR / sharding ----

    /// A visitor that keeps only what POR promises to preserve:
    /// final-memory results, race verdicts and race kinds.
    #[derive(Default)]
    struct Summary {
        explored: usize,
        memories: BTreeSet<BTreeMap<Loc, Value>>,
        race_kinds: BTreeSet<crate::races::RaceKind>,
        any_race: bool,
    }

    impl ExecutionVisitor for Summary {
        fn visit(&mut self, e: &Execution) -> bool {
            self.explored += 1;
            self.memories.insert(e.result.memory.clone());
            let a = crate::races::analyze(e);
            for r in a.races() {
                self.race_kinds.insert(r.kind);
            }
            self.any_race |= !a.is_race_free();
            true
        }
    }

    #[test]
    fn streaming_matches_materializing_reference() {
        let p = sb(OpClass::Unpaired);
        let mut s = Summary::default();
        let stats = visit_sc(&p, &limits(), false, Reduction::Exhaustive, &mut s).unwrap();
        let execs = enumerate_sc(&p, &limits()).unwrap();
        assert_eq!(stats.explored, execs.len());
        assert_eq!(stats.pruned, 0);
        let memories: BTreeSet<_> = execs.iter().map(|e| e.result.memory.clone()).collect();
        assert_eq!(s.memories, memories);
    }

    #[test]
    fn sleep_sets_prune_but_preserve_results_and_verdicts() {
        for class in [OpClass::Paired, OpClass::Unpaired, OpClass::NonOrdering] {
            let p = sb(class);
            let mut full = Summary::default();
            let fs = visit_sc(&p, &limits(), false, Reduction::Exhaustive, &mut full).unwrap();
            let mut red = Summary::default();
            let rs = visit_sc(&p, &limits(), false, Reduction::SleepSet, &mut red).unwrap();
            assert!(rs.explored < fs.explored, "sb must prune: {} vs {}", rs.explored, fs.explored);
            assert!(rs.pruned > 0);
            assert_eq!(red.memories, full.memories, "{class:?}: memory result set changed");
            assert_eq!(red.race_kinds, full.race_kinds, "{class:?}: race kinds changed");
            assert_eq!(red.any_race, full.any_race, "{class:?}: verdict changed");
        }
    }

    #[test]
    fn sleep_sets_compose_with_quantum_domains() {
        // Quantum writer + plain reader on separate locations: domain
        // branching and POR must not interfere.
        let mut p = Program::new("qpor");
        {
            let mut t = p.thread();
            t.store(OpClass::Quantum, "q", 1);
            t.store(OpClass::Data, "a", 1);
        }
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Quantum, "q");
            t.observe(r);
            t.store(OpClass::Data, "b", 2);
        }
        let p = p.build();
        let mut full = Summary::default();
        visit_sc(&p, &limits(), true, Reduction::Exhaustive, &mut full).unwrap();
        let mut red = Summary::default();
        visit_sc(&p, &limits(), true, Reduction::SleepSet, &mut red).unwrap();
        assert_eq!(red.memories, full.memories);
        assert_eq!(red.race_kinds, full.race_kinds);
    }

    #[test]
    fn visitor_can_stop_enumeration_early() {
        struct StopAfter(usize);
        impl ExecutionVisitor for StopAfter {
            fn visit(&mut self, _e: &Execution) -> bool {
                self.0 -= 1;
                self.0 > 0
            }
        }
        let p = sb(OpClass::Paired);
        let mut v = StopAfter(2);
        let stats = visit_sc(&p, &limits(), false, Reduction::Exhaustive, &mut v).unwrap();
        assert_eq!(stats.explored, 2, "enumeration stops when the visitor says so");
    }

    #[test]
    fn sharded_run_is_identical_at_any_thread_count() {
        let p = sb(OpClass::Unpaired);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 4, 7] {
            let run = visit_sc_sharded(
                &p,
                &limits(),
                false,
                Reduction::SleepSet,
                threads,
                &Summary::default,
                &|_v: &Summary| false,
            )
            .unwrap();
            let mut memories = BTreeSet::new();
            let mut kinds = BTreeSet::new();
            for (v, _) in &run.shards {
                memories.extend(v.memories.iter().cloned());
                kinds.extend(v.race_kinds.iter().copied());
            }
            runs.push((run.stats, memories, kinds, run.shards.len()));
        }
        for r in &runs[1..] {
            assert_eq!(r, &runs[0], "sharded run must not depend on the thread count");
        }
        // And the sharded walk agrees with the unsharded one.
        let mut flat = Summary::default();
        let fs = visit_sc(&p, &limits(), false, Reduction::SleepSet, &mut flat).unwrap();
        assert_eq!(runs[0].0, fs);
        assert_eq!(runs[0].1, flat.memories);
        assert_eq!(runs[0].2, flat.race_kinds);
    }

    #[test]
    fn sharded_early_exit_keeps_a_deterministic_prefix() {
        // Saturate as soon as a shard saw any execution: only shard 0
        // (and nothing after it) may be merged, at any thread count.
        let p = sb(OpClass::Paired);
        for threads in [1usize, 4] {
            let run = visit_sc_sharded(
                &p,
                &limits(),
                false,
                Reduction::Exhaustive,
                threads,
                &Summary::default,
                &|v: &Summary| v.explored > 0,
            )
            .unwrap();
            assert!(run.early_exit);
            assert_eq!(run.shards.len(), 1, "threads={threads}");
            assert!(run.shards[0].0.explored > 0);
        }
    }

    #[test]
    fn shared_limit_applies_across_shards() {
        let p = sb(OpClass::Paired);
        let r = visit_sc_sharded(
            &p,
            &EnumLimits { max_executions: 3, ..EnumLimits::default() },
            false,
            Reduction::Exhaustive,
            2,
            &Summary::default,
            &|_v: &Summary| false,
        );
        match r {
            Err(e) => assert_eq!(e, EnumError::TooManyExecutions { limit: 3 }),
            Ok(_) => panic!("limit must apply across shards"),
        }
    }
}
