//! The quantum transformation (paper §3.4).
//!
//! A *quantum-equivalent program* P<sub>q</sub> replaces every quantum
//! load with a conceptual `random()` and makes every quantum store
//! write `random()`. DRFrlx requires race-freedom and SC semantics of
//! P<sub>q</sub>, not of the original program — this is how the model
//! stays SC-centric while permitting genuinely non-SC relaxed counters.
//!
//! The transformation itself is implemented inside the enumerator
//! ([`crate::exec::enumerate_sc_quantum`]); this module holds the
//! supporting analysis: detecting whether a program needs the
//! transformation and choosing a sensible finite stand-in for the
//! `random()` value domain.

use crate::classes::OpClass;
use crate::exec::JUNK;
use crate::program::{Expr, Instr, Program, Value};

/// Does the program use any quantum atomics (so checking must run on
/// the quantum-equivalent program)?
pub fn has_quantum(p: &Program) -> bool {
    p.threads().iter().flat_map(|t| &t.instrs).any(|i| i.class() == Some(OpClass::Quantum))
}

/// A finite domain standing in for `random()`.
///
/// `random()` may return *any* value; for race detection on
/// straight-line litmus programs the loaded value can only influence
/// the execution through stored values and dependency shape, so a small
/// domain of "interesting" values suffices: every constant the program
/// mentions, the initial values, and a recognizable junk value that
/// matches nothing. Callers wanting to compare result *sets* against a
/// relaxed machine should extend the domain to cover the values the
/// original program can actually produce.
pub fn default_domain(p: &Program) -> Vec<Value> {
    let mut out: Vec<Value> = vec![0, 1, JUNK];
    let mut add = |v: Value| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    fn consts(e: &Expr, add: &mut impl FnMut(Value)) {
        match e {
            Expr::Const(v) => add(*v),
            Expr::Reg(_) => {}
            Expr::Bin(_, a, b) => {
                consts(a, add);
                consts(b, add);
            }
        }
    }
    for t in p.threads() {
        for i in &t.instrs {
            match i {
                Instr::Store { val, .. } => consts(val, &mut add),
                Instr::Rmw { operand, operand2, .. } => {
                    consts(operand, &mut add);
                    consts(operand2, &mut add);
                }
                _ => {}
            }
        }
    }
    for l in 0..p.num_locs() as u32 {
        add(p.init_value(crate::program::Loc(l)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RmwOp;

    #[test]
    fn detects_quantum_usage() {
        let mut p = Program::new("q");
        p.thread().rmw(OpClass::Quantum, "c", RmwOp::FetchAdd, 1);
        assert!(has_quantum(&p.build()));

        let mut p2 = Program::new("nq");
        p2.thread().rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        assert!(!has_quantum(&p2.build()));
    }

    #[test]
    fn domain_collects_program_constants() {
        let mut p = Program::new("d");
        p.set_init("x", 9);
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 5);
            t.rmw(OpClass::Quantum, "c", RmwOp::FetchAdd, 3);
        }
        let d = default_domain(&p.build());
        for v in [0, 1, JUNK, 5, 3, 9] {
            assert!(d.contains(&v), "domain missing {v}: {d:?}");
        }
        // No duplicates.
        let mut sorted = d.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), d.len());
    }
}
