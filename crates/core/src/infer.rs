//! Annotation inference: find a weakest legal labeling.
//!
//! The practical workflow DRFrlx enables is exactly this: a developer
//! starts from conservative SC atomics and asks which ones may be
//! relaxed without giving up SC-centric semantics. [`infer`] answers by
//! greedily downgrading each atomic operation — paired → unpaired →
//! non-ordering → commutative → speculative — keeping a downgrade only
//! if the whole program stays DRFrlx race-free.
//!
//! Quantum and the one-sided acquire/release classes are never inferred:
//! quantum changes the program the guarantee is about (the
//! quantum-equivalent program), and one-sided atomics weaken the
//! guarantee itself — both are judgement calls the programmer must make.
//!
//! Greedy search returns a *maximal* labeling (no single operation can
//! be weakened further), not necessarily a maximum one: an earlier
//! downgrade can preclude a later one. Operations are visited in thread
//! then program order, which matches how a human would annotate.

use crate::checker::try_check_program;
use crate::classes::{MemoryModel, OpClass};
use crate::exec::{EnumError, EnumLimits};
use crate::program::{Instr, Program};

/// The downgrade ladder, strongest first. `Paired` is the implicit top.
const LADDER: [OpClass; 4] =
    [OpClass::Unpaired, OpClass::NonOrdering, OpClass::Commutative, OpClass::Speculative];

/// One inference decision, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inferred {
    /// Thread index.
    pub tid: usize,
    /// Instruction index within the thread.
    pub iid: usize,
    /// The original annotation.
    pub from: OpClass,
    /// The inferred (weakest legal) annotation.
    pub to: OpClass,
}

/// Result of [`infer`].
#[derive(Debug, Clone)]
pub struct Inference {
    /// The re-annotated program.
    pub program: Program,
    /// Every operation whose class was weakened.
    pub changes: Vec<Inferred>,
}

fn class_of(p: &Program, tid: usize, iid: usize) -> Option<OpClass> {
    p.threads()[tid].instrs[iid].class()
}

fn with_class(p: &Program, tid: usize, iid: usize, class: OpClass) -> Program {
    let mut q = p.clone();
    // map_classes rewrites everything; edit the single instruction
    // in place instead.
    let mut threads: Vec<_> = q.threads().to_vec();
    match &mut threads[tid].instrs[iid] {
        Instr::Load { class: c, .. }
        | Instr::Store { class: c, .. }
        | Instr::Rmw { class: c, .. } => {
            *c = class;
        }
        _ => unreachable!("memory instruction"),
    }
    q.replace_threads(threads);
    q
}

/// Infer a weakest legal annotation for every atomic in `p`.
///
/// Data operations and quantum/acquire/release annotations are left
/// untouched; every other atomic is downgraded as far as DRFrlx
/// race-freedom allows.
///
/// # Errors
///
/// Returns [`EnumError`] if any intermediate check exceeds `limits`.
/// The original program must itself be DRFrlx race-free; otherwise the
/// result is the original program with no changes.
pub fn infer(p: &Program, limits: &EnumLimits) -> Result<Inference, EnumError> {
    let baseline = try_check_program(p, MemoryModel::Drfrlx, limits)?;
    if !baseline.is_race_free() {
        return Ok(Inference { program: p.clone(), changes: Vec::new() });
    }
    let mut current = p.clone();
    let mut changes = Vec::new();
    for tid in 0..p.threads().len() {
        for iid in 0..p.threads()[tid].instrs.len() {
            let Some(orig) = class_of(&current, tid, iid) else { continue };
            if matches!(
                orig,
                OpClass::Data | OpClass::Quantum | OpClass::Acquire | OpClass::Release
            ) {
                continue;
            }
            // Try ladder entries strictly weaker than the current class,
            // weakest acceptable last-to-first (prefer the weakest).
            let start = LADDER.iter().position(|&c| c == orig).map_or(0, |i| i + 1);
            let mut best = None;
            for &cand in LADDER[start..].iter().rev() {
                let trial = with_class(&current, tid, iid, cand);
                if try_check_program(&trial, MemoryModel::Drfrlx, limits)?.is_race_free() {
                    best = Some(cand);
                    break;
                }
            }
            if let Some(to) = best {
                current = with_class(&current, tid, iid, to);
                changes.push(Inferred { tid, iid, from: orig, to });
            }
        }
    }
    Ok(Inference { program: current, changes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RmwOp;

    fn infer_ok(p: &Program) -> Inference {
        infer(p, &EnumLimits::default()).expect("enumerable")
    }

    #[test]
    fn paired_event_counter_relaxes_to_commutative() {
        let mut p = Program::new("counter");
        p.thread().rmw(OpClass::Paired, "c", RmwOp::FetchAdd, 1);
        p.thread().rmw(OpClass::Paired, "c", RmwOp::FetchAdd, 2);
        let inf = infer_ok(&p.build());
        assert_eq!(inf.changes.len(), 2);
        for ch in &inf.changes {
            assert!(
                matches!(ch.to, OpClass::Speculative | OpClass::Commutative),
                "increment should relax fully, got {:?}",
                ch.to
            );
        }
        // The result really is race-free.
        assert!(crate::check_program(&inf.program, MemoryModel::Drfrlx).is_race_free());
    }

    #[test]
    fn mp_flag_stays_strong_enough_to_order_data() {
        // Unconditional consumer: the flag is the ONLY ordering for the
        // data pair, so it must stay paired.
        let mut p = Program::new("mp");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 1);
            t.store(OpClass::Paired, "flag", 1);
        }
        {
            let mut t = p.thread();
            let f = t.load(OpClass::Paired, "flag");
            t.if_nz(f, |t| {
                let d = t.load(OpClass::Data, "x");
                t.observe(d);
            });
        }
        let inf = infer_ok(&p.build());
        // Neither flag access may be weakened: any downgrade creates a
        // data race on x.
        assert!(inf.changes.is_empty(), "flag must stay paired, but inferred {:?}", inf.changes);
    }

    #[test]
    fn racy_input_is_returned_unchanged() {
        let mut p = Program::new("racy");
        p.thread().store(OpClass::Data, "x", 1);
        {
            let mut t = p.thread();
            let r = t.load(OpClass::Data, "x");
            t.observe(r);
        }
        let inf = infer_ok(&p.build());
        assert!(inf.changes.is_empty());
    }

    #[test]
    fn inference_is_maximal() {
        // No single op of the result can be weakened further.
        let mut p = Program::new("wq");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "task", 42);
            t.store(OpClass::Paired, "occ", 1);
        }
        {
            let mut t = p.thread();
            let o = t.load(OpClass::Paired, "occ");
            t.if_nz(o, |t| {
                let v = t.load(OpClass::Data, "task");
                t.observe(v);
            });
        }
        let inf = infer_ok(&p.build());
        let limits = EnumLimits::default();
        for tid in 0..inf.program.threads().len() {
            for iid in 0..inf.program.threads()[tid].instrs.len() {
                let Some(orig) = class_of(&inf.program, tid, iid) else { continue };
                if matches!(
                    orig,
                    OpClass::Data | OpClass::Quantum | OpClass::Acquire | OpClass::Release
                ) {
                    continue;
                }
                let start = LADDER.iter().position(|&c| c == orig).map_or(0, |i| i + 1);
                for &cand in &LADDER[start..] {
                    let trial = with_class(&inf.program, tid, iid, cand);
                    assert!(
                        !try_check_program(&trial, MemoryModel::Drfrlx, &limits)
                            .unwrap()
                            .is_race_free(),
                        "t{tid}.i{iid} could still weaken {orig:?} -> {cand:?}"
                    );
                }
            }
        }
    }
}
