//! Litmus-program representation.
//!
//! Programs are collections of straight-line threads over a set of named
//! shared locations. Threads compute with registers; loads write
//! registers, store/RMW operands are register expressions, and a
//! [`ThreadBuilder::branch_on`] marker induces control dependencies on
//! everything that follows it (the Herd `ctrl` relation). This is the
//! same shape of program Herd litmus tests use, which is what the
//! paper's Listing 7 model operates on.

use crate::classes::OpClass;
use std::collections::BTreeMap;
use std::fmt;

/// A shared memory location, interned by [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc(pub u32);

/// A per-thread register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

/// The value domain of litmus programs.
pub type Value = i64;

/// A register expression: the right-hand side of stores, RMW operands,
/// assignments and branch conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(Value),
    /// A register read.
    Reg(Reg),
    /// A binary operation over two sub-expressions.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Binary operators available in [`Expr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Equality (1 or 0).
    Eq,
    /// Inequality (1 or 0).
    Ne,
    /// Signed less-than (1 or 0).
    Lt,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl Expr {
    /// Evaluate under a register file.
    pub fn eval(&self, regs: &BTreeMap<Reg, Value>) -> Value {
        match self {
            Expr::Const(v) => *v,
            Expr::Reg(r) => *regs.get(r).unwrap_or(&0),
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(regs), b.eval(regs));
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Eq => (a == b) as Value,
                    BinOp::Ne => (a != b) as Value,
                    BinOp::Lt => (a < b) as Value,
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                }
            }
        }
    }

    /// Registers this expression reads, appended to `out`.
    pub fn regs_read(&self, out: &mut Vec<Reg>) {
        match self {
            Expr::Const(_) => {}
            Expr::Reg(r) => out.push(*r),
            Expr::Bin(_, a, b) => {
                a.regs_read(out);
                b.regs_read(out);
            }
        }
    }

    /// Visit every register read, without allocating (the streaming
    /// enumerator's hot-loop alternative to [`Expr::regs_read`]).
    pub fn for_each_reg(&self, f: &mut impl FnMut(Reg)) {
        match self {
            Expr::Const(_) => {}
            Expr::Reg(r) => f(*r),
            Expr::Bin(_, a, b) => {
                a.for_each_reg(f);
                b.for_each_reg(f);
            }
        }
    }

    /// Evaluate against a dense register file (`None` = never written,
    /// which reads as 0 exactly like the map-based [`Expr::eval`]).
    pub fn eval_slice(&self, regs: &[Option<Value>]) -> Value {
        match self {
            Expr::Const(v) => *v,
            Expr::Reg(r) => regs.get(r.0 as usize).copied().flatten().unwrap_or(0),
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval_slice(regs), b.eval_slice(regs));
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Eq => (a == b) as Value,
                    BinOp::Ne => (a != b) as Value,
                    BinOp::Lt => (a < b) as Value,
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                }
            }
        }
    }

    /// Shorthand for `Expr::Bin(op, a, b)`.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }
}

impl From<Value> for Expr {
    fn from(v: Value) -> Expr {
        Expr::Const(v)
    }
}

impl From<Reg> for Expr {
    fn from(r: Reg) -> Expr {
        Expr::Reg(r)
    }
}

/// Read-modify-write operations.
///
/// The loaded (old) value is returned into the destination register; the
/// written value is a function of the old value and the operand(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// `new = old + operand`.
    FetchAdd,
    /// `new = old - operand`.
    FetchSub,
    /// `new = old & operand`.
    FetchAnd,
    /// `new = old | operand`.
    FetchOr,
    /// `new = old ^ operand`.
    FetchXor,
    /// `new = min(old, operand)`.
    FetchMin,
    /// `new = max(old, operand)`.
    FetchMax,
    /// `new = operand` (atomic exchange).
    Exchange,
    /// Compare-and-swap: `new = if old == expected { operand } else { old }`.
    /// The `expected` value is the instruction's second operand.
    Cas,
}

impl RmwOp {
    /// Apply the operation: `(old, operand, operand2) -> new`.
    pub fn apply(self, old: Value, operand: Value, operand2: Value) -> Value {
        match self {
            RmwOp::FetchAdd => old.wrapping_add(operand),
            RmwOp::FetchSub => old.wrapping_sub(operand),
            RmwOp::FetchAnd => old & operand,
            RmwOp::FetchOr => old | operand,
            RmwOp::FetchXor => old ^ operand,
            RmwOp::FetchMin => old.min(operand),
            RmwOp::FetchMax => old.max(operand),
            RmwOp::Exchange => operand,
            RmwOp::Cas => {
                if old == operand2 {
                    operand
                } else {
                    old
                }
            }
        }
    }
}

/// One thread instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = load(class, loc)`.
    Load {
        /// Operation class annotation.
        class: OpClass,
        /// Target location.
        loc: Loc,
        /// Register receiving the loaded value.
        dst: Reg,
    },
    /// `store(class, loc, val)`.
    Store {
        /// Operation class annotation.
        class: OpClass,
        /// Target location.
        loc: Loc,
        /// Stored value.
        val: Expr,
    },
    /// `dst = rmw(class, loc, op, operand[, operand2])`, atomically.
    Rmw {
        /// Operation class annotation.
        class: OpClass,
        /// Target location.
        loc: Loc,
        /// Modify function.
        op: RmwOp,
        /// Primary operand.
        operand: Expr,
        /// Secondary operand (CAS `expected`); `Const(0)` otherwise.
        operand2: Expr,
        /// Register receiving the *old* value.
        dst: Reg,
    },
    /// Local computation `dst = expr` (no memory event; propagates
    /// data dependencies).
    Assign {
        /// Destination register.
        dst: Reg,
        /// Computed expression.
        expr: Expr,
    },
    /// Control-dependency marker: every later memory operation in this
    /// thread control-depends on the registers `cond` reads (Herd's
    /// `ctrl`). Does not change control flow — litmus programs are the
    /// unrolled path of interest.
    BranchOn {
        /// Condition whose source registers induce the dependency.
        cond: Expr,
    },
    /// Observation marker: the loads feeding `expr` are "used by another
    /// instruction in the thread" (paper §3.2.3 / §3.5.3). Herd
    /// approximates observability with `addr | data | ctrl` dependencies
    /// into later memory accesses; `Observe` additionally covers uses
    /// that a litmus test would express as a final-state condition.
    Observe {
        /// Expression whose source loads become observed.
        expr: Expr,
    },
    /// Structured conditional: if `cond` evaluates to zero, skip the
    /// next `skip` instructions. Emitted by [`ThreadBuilder::if_nz`];
    /// only forward skips are expressible, so threads always terminate.
    /// Like [`Instr::BranchOn`], induces control dependencies from the
    /// loads feeding `cond` onto all later memory operations.
    JumpIfZero {
        /// Branch condition.
        cond: Expr,
        /// Number of following instructions skipped when `cond == 0`.
        skip: usize,
    },
    /// Simulator timing hint: `cycles` of local busy work. Axiomatic
    /// no-op — produces no memory event, so it is invisible to the
    /// race axioms; operationally it delays the thread's next issue.
    Think {
        /// Busy cycles consumed when simulated.
        cycles: u32,
    },
    /// Block-level barrier. Every thread of the program arrives, then
    /// all proceed together. For the race axioms this is a
    /// synchronization edge: every event before the barrier
    /// happens-before every event after it, across all threads. Each
    /// thread must execute the same number of barriers (unequal counts
    /// deadlock and are rejected during enumeration).
    Barrier,
    /// `dst = scratch[addr]` — read the block-shared scratchpad.
    /// Scratch is invisible to the race axioms; programs must keep
    /// scratch accesses from different threads to the same slot
    /// separated by a [`Instr::Barrier`] (the enumerator enforces this
    /// discipline and rejects scratch races).
    ScratchLoad {
        /// Scratch slot address expression (evaluated locally).
        addr: Expr,
        /// Register receiving the slot value (0 if never written).
        dst: Reg,
    },
    /// `scratch[addr] = val` — write the block-shared scratchpad. See
    /// [`Instr::ScratchLoad`] for the race-freedom discipline.
    ScratchStore {
        /// Scratch slot address expression (evaluated locally).
        addr: Expr,
        /// Stored value.
        val: Expr,
    },
}

impl Instr {
    /// The memory location accessed, if this is a memory instruction.
    pub fn loc(&self) -> Option<Loc> {
        match self {
            Instr::Load { loc, .. } | Instr::Store { loc, .. } | Instr::Rmw { loc, .. } => {
                Some(*loc)
            }
            _ => None,
        }
    }

    /// The class annotation, if this is a memory instruction.
    pub fn class(&self) -> Option<OpClass> {
        match self {
            Instr::Load { class, .. } | Instr::Store { class, .. } | Instr::Rmw { class, .. } => {
                Some(*class)
            }
            _ => None,
        }
    }

    /// Is this a memory instruction (produces a dynamic event)?
    pub fn is_memory(&self) -> bool {
        self.loc().is_some()
    }
}

/// A straight-line thread: a sequence of instructions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Thread {
    /// Instructions in program order.
    pub instrs: Vec<Instr>,
}

/// A whole litmus program.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    threads: Vec<Thread>,
    locs: Vec<String>,
    /// Name → index of `locs`, so interning stays O(log n) even for
    /// grid-scale programs with tens of thousands of locations.
    loc_index: BTreeMap<String, u32>,
    init: BTreeMap<Loc, Value>,
}

impl Program {
    /// Start building a program. Use [`Program::thread`] to add threads
    /// and [`Program::build`] (a no-op finisher kept for readability) to
    /// obtain the final program.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            threads: Vec::new(),
            locs: Vec::new(),
            loc_index: BTreeMap::new(),
            init: BTreeMap::new(),
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Threads of the program.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// Number of shared locations mentioned.
    pub fn num_locs(&self) -> usize {
        self.locs.len()
    }

    /// Name of a location.
    pub fn loc_name(&self, loc: Loc) -> &str {
        &self.locs[loc.0 as usize]
    }

    /// Initial value of a location (0 unless set with
    /// [`Program::set_init`]).
    pub fn init_value(&self, loc: Loc) -> Value {
        *self.init.get(&loc).unwrap_or(&0)
    }

    /// Set the initial value of a location.
    pub fn set_init(&mut self, loc: &str, v: Value) {
        let l = self.intern(loc);
        self.init.insert(l, v);
    }

    /// Intern a location name.
    pub fn intern(&mut self, name: &str) -> Loc {
        if let Some(&i) = self.loc_index.get(name) {
            Loc(i)
        } else {
            let i = self.locs.len() as u32;
            self.locs.push(name.to_string());
            self.loc_index.insert(name.to_string(), i);
            Loc(i)
        }
    }

    /// Look up an already-interned location.
    pub fn find_loc(&self, name: &str) -> Option<Loc> {
        self.loc_index.get(name).map(|&i| Loc(i))
    }

    /// Append a prebuilt thread body (program templates emit `Thread`
    /// values directly when they need forward jump patching that the
    /// structured builder cannot express).
    pub fn push_thread(&mut self, t: Thread) {
        self.threads.push(t);
    }

    /// Add a thread and return its builder.
    pub fn thread(&mut self) -> ThreadBuilder<'_> {
        self.threads.push(Thread::default());
        let idx = self.threads.len() - 1;
        ThreadBuilder { program: self, idx, next_reg: 0 }
    }

    /// Finish building. Consumes nothing; exists so call sites read
    /// naturally (`p.build()`), and validates basic well-formedness.
    ///
    /// # Panics
    ///
    /// Panics if the program has no threads or a thread writes a
    /// register it also uses before definition — both indicate test bugs.
    pub fn build(self) -> Program {
        assert!(!self.threads.is_empty(), "program {} has no threads", self.name);
        self
    }

    /// Total number of memory instructions across all threads.
    pub fn memory_op_count(&self) -> usize {
        self.threads.iter().map(|t| t.instrs.iter().filter(|i| i.is_memory()).count()).sum()
    }

    /// Classes used anywhere in the program.
    pub fn classes_used(&self) -> Vec<OpClass> {
        let mut out: Vec<OpClass> = Vec::new();
        for t in &self.threads {
            for i in &t.instrs {
                if let Some(c) = i.class() {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Replace the thread list wholesale (used by annotation inference
    /// to edit a single instruction's class).
    pub(crate) fn replace_threads(&mut self, threads: Vec<Thread>) {
        self.threads = threads;
    }

    /// A copy of this program with its thread list replaced — name,
    /// locations and initial values are kept. Used by the conformance
    /// shrinker to delta-debug a disagreeing program.
    pub fn with_threads(&self, threads: Vec<Thread>) -> Program {
        let mut p = self.clone();
        p.threads = threads;
        p
    }

    /// Rewrite every memory operation's class through `f` — used by the
    /// checkers to view a DRFrlx program through DRF0/DRF1 eyes.
    pub fn map_classes(&self, f: impl Fn(OpClass) -> OpClass) -> Program {
        let mut p = self.clone();
        for t in &mut p.threads {
            for i in &mut t.instrs {
                match i {
                    Instr::Load { class, .. }
                    | Instr::Store { class, .. }
                    | Instr::Rmw { class, .. } => *class = f(*class),
                    _ => {}
                }
            }
        }
        p
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} ({} threads)", self.name, self.threads.len())
    }
}

/// Fluent builder for a single thread. Obtained from [`Program::thread`].
///
/// Each memory helper returns the destination register (for loads/RMWs)
/// so values can be threaded into later expressions.
#[derive(Debug)]
pub struct ThreadBuilder<'p> {
    program: &'p mut Program,
    idx: usize,
    next_reg: u16,
}

impl<'p> ThreadBuilder<'p> {
    fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn push(&mut self, i: Instr) {
        self.program.threads[self.idx].instrs.push(i);
    }

    /// `r = load(class, loc)`; returns `r`.
    pub fn load(&mut self, class: OpClass, loc: &str) -> Reg {
        let loc = self.program.intern(loc);
        let dst = self.fresh_reg();
        self.push(Instr::Load { class, loc, dst });
        dst
    }

    /// `store(class, loc, val)`.
    pub fn store(&mut self, class: OpClass, loc: &str, val: impl Into<Expr>) -> &mut Self {
        let loc = self.program.intern(loc);
        self.push(Instr::Store { class, loc, val: val.into() });
        self
    }

    /// `r = rmw(class, loc, op, operand)`; returns `r` (the old value).
    pub fn rmw(&mut self, class: OpClass, loc: &str, op: RmwOp, operand: impl Into<Expr>) -> Reg {
        let loc = self.program.intern(loc);
        let dst = self.fresh_reg();
        self.push(Instr::Rmw {
            class,
            loc,
            op,
            operand: operand.into(),
            operand2: Expr::Const(0),
            dst,
        });
        dst
    }

    /// Compare-and-swap: writes `new` if the location holds `expected`;
    /// returns the register holding the old value.
    pub fn cas(
        &mut self,
        class: OpClass,
        loc: &str,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
    ) -> Reg {
        let loc = self.program.intern(loc);
        let dst = self.fresh_reg();
        self.push(Instr::Rmw {
            class,
            loc,
            op: RmwOp::Cas,
            operand: new.into(),
            operand2: expected.into(),
            dst,
        });
        dst
    }

    /// Local computation `r = expr`; returns `r`.
    pub fn assign(&mut self, expr: impl Into<Expr>) -> Reg {
        let dst = self.fresh_reg();
        self.push(Instr::Assign { dst, expr: expr.into() });
        dst
    }

    /// Control-dependency marker on `cond` (see [`Instr::BranchOn`]).
    pub fn branch_on(&mut self, cond: impl Into<Expr>) -> &mut Self {
        self.push(Instr::BranchOn { cond: cond.into() });
        self
    }

    /// Observation marker on `expr` (see [`Instr::Observe`]).
    pub fn observe(&mut self, expr: impl Into<Expr>) -> &mut Self {
        self.push(Instr::Observe { expr: expr.into() });
        self
    }

    /// Structured conditional: `body` executes only when `cond` is
    /// non-zero. Lowered to a forward [`Instr::JumpIfZero`].
    ///
    /// Registers defined inside the body must not be consumed after the
    /// join — when the body is skipped they remain undefined (they read
    /// as 0 in the SC enumerator and stall the relaxed machine).
    pub fn if_nz(&mut self, cond: impl Into<Expr>, body: impl FnOnce(&mut ThreadBuilder<'_>)) {
        let at = self.program.threads[self.idx].instrs.len();
        self.push(Instr::JumpIfZero { cond: cond.into(), skip: 0 });
        body(self);
        let end = self.program.threads[self.idx].instrs.len();
        match &mut self.program.threads[self.idx].instrs[at] {
            Instr::JumpIfZero { skip, .. } => *skip = end - at - 1,
            _ => unreachable!(),
        }
    }

    /// Structured conditional on `cond == 0`: `body` executes only when
    /// `cond` is zero.
    pub fn if_z(&mut self, cond: impl Into<Expr>, body: impl FnOnce(&mut ThreadBuilder<'_>)) {
        let c = Expr::bin(BinOp::Eq, cond.into(), Expr::Const(0));
        self.if_nz(c, body);
    }

    /// Timing hint: `cycles` of local busy work (see [`Instr::Think`]).
    pub fn think(&mut self, cycles: u32) -> &mut Self {
        self.push(Instr::Think { cycles });
        self
    }

    /// Block-level barrier (see [`Instr::Barrier`]).
    pub fn barrier(&mut self) -> &mut Self {
        self.push(Instr::Barrier);
        self
    }

    /// `r = scratch[addr]`; returns `r` (see [`Instr::ScratchLoad`]).
    pub fn scratch_load(&mut self, addr: impl Into<Expr>) -> Reg {
        let dst = self.fresh_reg();
        self.push(Instr::ScratchLoad { addr: addr.into(), dst });
        dst
    }

    /// `scratch[addr] = val` (see [`Instr::ScratchStore`]).
    pub fn scratch_store(&mut self, addr: impl Into<Expr>, val: impl Into<Expr>) -> &mut Self {
        self.push(Instr::ScratchStore { addr: addr.into(), val: val.into() });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval_and_deps() {
        let mut regs = BTreeMap::new();
        regs.insert(Reg(0), 5);
        regs.insert(Reg(1), 3);
        let e = Expr::bin(
            BinOp::Add,
            Expr::Reg(Reg(0)),
            Expr::bin(BinOp::Max, Expr::Reg(Reg(1)), Expr::Const(4)),
        );
        assert_eq!(e.eval(&regs), 9);
        let mut deps = Vec::new();
        e.regs_read(&mut deps);
        assert_eq!(deps, vec![Reg(0), Reg(1)]);
    }

    #[test]
    fn expr_comparison_ops() {
        let regs = BTreeMap::new();
        assert_eq!(Expr::bin(BinOp::Eq, 3.into(), 3.into()).eval(&regs), 1);
        assert_eq!(Expr::bin(BinOp::Ne, 3.into(), 3.into()).eval(&regs), 0);
        assert_eq!(Expr::bin(BinOp::Lt, 2.into(), 3.into()).eval(&regs), 1);
        assert_eq!(Expr::bin(BinOp::Min, 2.into(), 3.into()).eval(&regs), 2);
        assert_eq!(Expr::bin(BinOp::Sub, 2.into(), 3.into()).eval(&regs), -1);
        assert_eq!(Expr::bin(BinOp::Xor, 6.into(), 3.into()).eval(&regs), 5);
        assert_eq!(Expr::bin(BinOp::And, 6.into(), 3.into()).eval(&regs), 2);
        assert_eq!(Expr::bin(BinOp::Or, 6.into(), 3.into()).eval(&regs), 7);
    }

    #[test]
    fn rmw_semantics() {
        assert_eq!(RmwOp::FetchAdd.apply(10, 5, 0), 15);
        assert_eq!(RmwOp::FetchSub.apply(10, 5, 0), 5);
        assert_eq!(RmwOp::FetchMin.apply(10, 5, 0), 5);
        assert_eq!(RmwOp::FetchMax.apply(10, 5, 0), 10);
        assert_eq!(RmwOp::Exchange.apply(10, 5, 0), 5);
        assert_eq!(RmwOp::FetchAnd.apply(0b110, 0b011, 0), 0b010);
        assert_eq!(RmwOp::FetchOr.apply(0b110, 0b011, 0), 0b111);
        assert_eq!(RmwOp::FetchXor.apply(0b110, 0b011, 0), 0b101);
        // CAS hits and misses.
        assert_eq!(RmwOp::Cas.apply(7, 42, 7), 42);
        assert_eq!(RmwOp::Cas.apply(8, 42, 7), 8);
    }

    #[test]
    fn builder_interns_locations_once() {
        let mut p = Program::new("t");
        let t = &mut p.thread();
        t.store(OpClass::Data, "x", 1);
        t.store(OpClass::Data, "x", 2);
        t.store(OpClass::Data, "y", 3);
        let p = p.build();
        assert_eq!(p.num_locs(), 2);
        assert_eq!(p.loc_name(Loc(0)), "x");
        assert_eq!(p.loc_name(Loc(1)), "y");
        assert_eq!(p.memory_op_count(), 3);
    }

    #[test]
    fn builder_returns_fresh_registers() {
        let mut p = Program::new("t");
        let mut t = p.thread();
        let r0 = t.load(OpClass::Paired, "x");
        let r1 = t.rmw(OpClass::Paired, "y", RmwOp::FetchAdd, 1);
        assert_ne!(r0, r1);
    }

    #[test]
    fn map_classes_rewrites_annotations() {
        let mut p = Program::new("t");
        let mut t = p.thread();
        t.load(OpClass::Quantum, "x");
        t.store(OpClass::Commutative, "y", 1);
        let p = p.build();
        let q = p.map_classes(|c| if c.is_relaxed() { OpClass::Paired } else { c });
        assert_eq!(q.classes_used(), vec![OpClass::Paired]);
        // Original untouched.
        assert!(p.classes_used().contains(&OpClass::Quantum));
    }

    #[test]
    fn init_values_default_to_zero() {
        let mut p = Program::new("t");
        p.set_init("x", 7);
        let mut t = p.thread();
        t.load(OpClass::Data, "x");
        t.load(OpClass::Data, "y");
        let p = p.build();
        let x = p.find_loc("x").unwrap();
        let y = p.find_loc("y").unwrap();
        assert_eq!(p.init_value(x), 7);
        assert_eq!(p.init_value(y), 0);
    }

    #[test]
    #[should_panic(expected = "no threads")]
    fn empty_program_rejected() {
        let _ = Program::new("empty").build();
    }
}
