//! # drfrlx-core — the DRFrlx memory consistency model
//!
//! This crate is a from-scratch Rust implementation of the memory-model
//! machinery of *"Chasing Away RAts: Semantics and Evaluation for Relaxed
//! Atomics on Heterogeneous Systems"* (Sinclair, Alsop, Adve — ISCA 2017).
//!
//! The paper extends the data-race-free family of consistency models
//! (DRF0, DRF1) with five classes of relaxed atomics — *unpaired*,
//! *commutative*, *non-ordering*, *quantum* and *speculative* — and gives
//! each an SC-centric contract. The paper formalized the model with the
//! Herd tool (its Listing 7); this crate reimplements that formalization
//! natively:
//!
//! * [`program`] — a small litmus-program representation: straight-line
//!   threads of loads/stores/RMWs over named locations, with register
//!   computation and explicit address/data/control dependencies.
//! * [`exec`] — enumeration of **all SC executions** of a program,
//!   producing [`exec::Execution`]s that carry the `po`, `rf`, `co` and
//!   dependency relations.
//! * [`relation`] — a tiny relation-algebra toolkit (union, intersection,
//!   difference, composition, transitive closure, class restriction)
//!   mirroring the combinators Herd models are written in.
//! * [`races`] — the programmer-centric model: the race detectors of
//!   Listing 7 (`data`, `commutative`, `non-ordering`, `quantum`,
//!   `speculative`), including program/conflict-graph ordering paths and
//!   valid paths.
//! * [`checker`] — whole-program verdicts: is this program DRF0 / DRF1 /
//!   DRFrlx? Handles the *quantum transformation* (quantum loads return
//!   arbitrary values) of §3.4.
//! * [`syscentric`] — the system-centric model: an operational relaxed
//!   machine that reorders exactly what a DRFrlx-compliant system may
//!   reorder, used to confirm that race-free programs only produce SC
//!   results (Theorem 3.1, checked empirically).
//! * [`classes`] — the shared vocabulary ([`OpClass`], [`MemoryModel`],
//!   [`Protocol`], [`SystemConfig`]) also used by the `hsim-*` simulator
//!   crates.
//!
//! ## Quickstart
//!
//! ```
//! use drfrlx_core::prelude::*;
//!
//! // The paper's event-counter use case (Listing 2), reduced: two
//! // threads increment a shared counter with commutative atomics.
//! let mut p = Program::new("event_counter");
//! p.thread().rmw(OpClass::Commutative, "count", RmwOp::FetchAdd, 1);
//! p.thread().rmw(OpClass::Commutative, "count", RmwOp::FetchAdd, 1);
//!
//! let report = check_program(&p.build(), MemoryModel::Drfrlx);
//! assert!(report.is_race_free(), "commutative increments are DRFrlx");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axiomatic;
pub mod checker;
pub mod classes;
pub mod emit;
pub mod exec;
pub mod infer;
pub mod parse;
pub mod pretty;
pub mod program;
pub mod quantum;
pub mod races;
pub mod relation;
pub mod resilience;
pub mod syscentric;

/// Convenient glob-import surface for the most common items.
pub mod prelude {
    pub use crate::checker::{check_program, CheckReport, Verdict};
    pub use crate::classes::{MemoryModel, OpClass, Protocol, SystemConfig};
    pub use crate::exec::{enumerate_sc, EnumLimits, Execution};
    pub use crate::program::{Expr, Program, RmwOp, ThreadBuilder};
    pub use crate::races::{analyze, Race, RaceAnalysis, RaceDetector, RaceKind};
    pub use crate::syscentric::{explore_relaxed, RelaxedOutcomes};
}

pub use checker::{
    check_program, check_program_resilient, CheckOutcome, CheckReport, CheckResilience,
    ShardRecord, Verdict,
};
pub use classes::{MemoryModel, OpClass, Protocol, SystemConfig};
pub use exec::{enumerate_sc, EnumLimits, Execution};
pub use program::{Program, RmwOp};
pub use races::{Race, RaceAnalysis, RaceDetector, RaceKind};
pub use resilience::{Budget, EngineId, ExhaustReason, Fault, FaultPlan, RunStatus};
