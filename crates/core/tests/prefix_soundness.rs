//! Prefix soundness of the resilient checker, as a property test:
//! whatever a budget-limited run reports must be a *prefix truth* of
//! the unbudgeted run. Over randomized programs, every race found
//! under any execution budget is also in the unbudgeted race set, the
//! budgeted run never explores more than the unbudgeted one, and a
//! run that completes within its budget reports exactly the full set.

use drfrlx_core::checker::{
    check_program_resilient, check_program_with, CheckOptions, CheckResilience, RaceKey,
};
use drfrlx_core::resilience::RunStatus;
use drfrlx_core::{MemoryModel, OpClass, Program};
use std::collections::BTreeSet;

/// SplitMix64 — the workspace's standard deterministic generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const CLASSES: [OpClass; 7] = [
    OpClass::Data,
    OpClass::Paired,
    OpClass::Unpaired,
    OpClass::Commutative,
    OpClass::NonOrdering,
    OpClass::Quantum,
    OpClass::Speculative,
];

/// A random small program: 2–3 threads, 2–3 memory ops each, over two
/// locations and the paper's seven distinguishable classes. Small
/// enough that the unbudgeted tree always fits the default budget,
/// conflict-heavy enough (two locations) that most seeds race.
fn generate(seed: u64) -> Program {
    let mut rng = Rng(seed);
    let mut p = Program::new("prefix_fuzz");
    let threads = 2 + rng.below(2);
    for _ in 0..threads {
        let mut th = p.thread();
        let ops = 2 + rng.below(2);
        for _ in 0..ops {
            let class = CLASSES[rng.below(CLASSES.len() as u64) as usize];
            let loc = if rng.below(2) == 0 { "x" } else { "y" };
            if rng.below(3) == 0 {
                let r = th.load(class, loc);
                th.observe(r);
            } else {
                th.store(class, loc, rng.below(100) as i64);
            }
        }
    }
    p.build()
}

fn keys(races: &[drfrlx_core::checker::FoundRace]) -> BTreeSet<RaceKey> {
    races.iter().map(|f| f.key).collect()
}

#[test]
fn budgeted_races_are_a_subset_of_the_unbudgeted_set() {
    for seed in 0..24u64 {
        let p = generate(seed);
        let model = if seed % 2 == 0 { MemoryModel::Drfrlx } else { MemoryModel::Drf0 };
        let opts = CheckOptions { threads: 1, early_exit: false, ..CheckOptions::default() };

        let full = check_program_with(&p, model, &opts).expect("small tree fits default budget");
        let full_keys = keys(&full.races);

        for budget in [1usize, 3, 17, 120] {
            let mut tight = opts.clone();
            tight.limits.max_executions = budget;
            let out = check_program_resilient(&p, model, &tight, &CheckResilience::default());

            // Prefix soundness: nothing invented, nothing over-explored.
            let got = keys(&out.report.races);
            assert!(
                got.is_subset(&full_keys),
                "seed {seed} budget {budget}: budgeted run invented races: \
                 {got:?} ⊄ {full_keys:?}"
            );
            assert!(
                out.report.executions <= full.executions,
                "seed {seed} budget {budget}: explored {} > unbudgeted {}",
                out.report.executions,
                full.executions
            );

            match out.status {
                RunStatus::Complete => {
                    // Fit inside the budget: the verdict is the verdict.
                    assert_eq!(got, full_keys, "seed {seed} budget {budget}");
                    assert_eq!(out.report.executions, full.executions);
                }
                RunStatus::Inconclusive { .. } => {
                    // Ran out: a race-free partial report is not a
                    // race-free verdict, which is exactly why the
                    // status is not Complete.
                }
                RunStatus::Degraded { ref lost } => {
                    panic!("seed {seed}: no faults injected, yet lost shards {lost:?}")
                }
            }
        }
    }
}

/// The same property through the conformance harness's eyes: a
/// budget that ends a run early must surface as a non-Complete
/// status, never as a silently-thinner Complete report.
#[test]
fn an_exhausted_budget_is_never_reported_as_complete() {
    let mut racy = None;
    for seed in 0..24u64 {
        let p = generate(seed);
        let opts = CheckOptions { threads: 1, early_exit: false, ..CheckOptions::default() };
        let full = check_program_with(&p, MemoryModel::Drfrlx, &opts).unwrap();
        if full.executions > 4 {
            racy = Some((p, full));
            break;
        }
    }
    let (p, full) = racy.expect("some seed explores more than 4 executions");
    let mut tight = CheckOptions { threads: 1, early_exit: false, ..CheckOptions::default() };
    tight.limits.max_executions = 4;
    let out = check_program_resilient(&p, MemoryModel::Drfrlx, &tight, &CheckResilience::default());
    assert!(
        !out.status.is_complete(),
        "explored {} of {} executions but claimed Complete",
        out.report.executions,
        full.executions
    );
}
