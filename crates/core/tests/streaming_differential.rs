//! Randomized differential test for the streaming checker.
//!
//! The streaming pipeline (visitor enumeration + sleep-set partial-order
//! reduction + sharded parallel workers + early exit) must agree with the
//! retained materializing reference on every observable of a
//! [`drfrlx_core::checker::CheckReport`] that is invariant under
//! reduction: the verdict, the set of race kinds, and witness presence.
//! On top of that, the streaming report itself must be bit-identical at
//! any `--threads`, including execution counts and race descriptions.

use drfrlx_core::checker::{check_program_reference, check_program_with, CheckOptions, RaceKey};
use drfrlx_core::exec::Reduction;
use drfrlx_core::program::{Program, RmwOp};
use drfrlx_core::races::RaceKind;
use drfrlx_core::{MemoryModel, OpClass};
use std::collections::BTreeSet;

/// SplitMix64: tiny, seedable, no dependencies, good enough to shake
/// out scheduling-dependent bugs reproducibly.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const LOCS: [&str; 3] = ["x", "y", "z"];
const CLASSES: [OpClass; 8] = [
    OpClass::Data,
    OpClass::Paired,
    OpClass::Unpaired,
    OpClass::Commutative,
    OpClass::NonOrdering,
    OpClass::Quantum,
    OpClass::Acquire,
    OpClass::Release,
];

/// A small random program: 2-3 threads, 2-3 memory ops each, over three
/// locations, with classes drawn from the full §3.4 menagerie. Quantum
/// ops are budgeted (they multiply the execution count by the domain
/// size) so the materializing reference always finishes under the
/// default limits.
fn random_program(rng: &mut SplitMix64, idx: usize) -> Program {
    let mut p = Program::new(format!("rand_{idx}"));
    let nthreads = 2 + rng.below(2) as usize;
    let mut quantum_budget = 2usize;
    for _ in 0..nthreads {
        let mut t = p.thread();
        let nops = if nthreads == 3 { 2 } else { 2 + rng.below(2) as usize };
        for _ in 0..nops {
            let mut class = CLASSES[rng.below(CLASSES.len() as u64) as usize];
            if class == OpClass::Quantum {
                if quantum_budget == 0 {
                    class = OpClass::NonOrdering;
                } else {
                    quantum_budget -= 1;
                }
            }
            let loc = LOCS[rng.below(LOCS.len() as u64) as usize];
            match rng.below(3) {
                0 => {
                    let r = t.load(class, loc);
                    if rng.below(2) == 0 {
                        t.observe(r);
                    }
                }
                1 => {
                    t.store(class, loc, rng.below(5) as i64);
                }
                _ => {
                    t.rmw(class, loc, RmwOp::FetchAdd, 1 + rng.below(3) as i64);
                }
            }
        }
    }
    p.build()
}

fn kinds(report: &drfrlx_core::checker::CheckReport) -> BTreeSet<RaceKind> {
    report.races.iter().map(|f| f.race.kind).collect()
}

fn keys(report: &drfrlx_core::checker::CheckReport) -> BTreeSet<RaceKey> {
    report.races.iter().map(|f| f.key).collect()
}

#[test]
fn streaming_checker_agrees_with_the_materializing_reference() {
    let mut rng = SplitMix64(0x5EED_CAFE_D00D_F00D);
    for idx in 0..100 {
        let p = random_program(&mut rng, idx);
        for model in MemoryModel::ALL {
            let opts = CheckOptions::default();
            let reference = check_program_reference(&p, model, &opts.limits)
                .unwrap_or_else(|e| panic!("{}: reference failed under {model}: {e}", p.name()));
            let mut streamed = Vec::new();
            for threads in [1, 2, 4] {
                let opts = CheckOptions { threads, ..CheckOptions::default() };
                let report = check_program_with(&p, model, &opts).unwrap_or_else(|e| {
                    panic!("{}: streaming failed under {model} x{threads}: {e}", p.name())
                });
                assert_eq!(
                    report.verdict,
                    reference.verdict,
                    "{}: verdict diverged under {model} at {threads} threads",
                    p.name()
                );
                assert_eq!(
                    kinds(&report),
                    kinds(&reference),
                    "{}: race kinds diverged under {model} at {threads} threads",
                    p.name()
                );
                assert_eq!(
                    report.races.is_empty(),
                    reference.races.is_empty(),
                    "{}: witness presence diverged under {model} at {threads} threads",
                    p.name()
                );
                streamed.push((threads, format!("{report:?}")));
            }
            // The streaming report is deterministic in every field —
            // descriptions, explored/pruned counts, quantum flag — at
            // any worker count.
            let (_, first) = &streamed[0];
            for (threads, debug) in &streamed[1..] {
                assert_eq!(
                    debug,
                    first,
                    "{}: streaming report differs between 1 and {threads} threads under {model}",
                    p.name()
                );
            }

            // Duplicate-state memoization leg: sleep sets and sleep
            // sets + memoization must both reproduce the reference's
            // verdict AND its full static race-key set — early exit
            // off, so every attainable witness is enumerated and the
            // key sets are exactly comparable. The memoized report
            // must itself be bit-identical at any worker count.
            let reference_keys = keys(&reference);
            let mut memoized = Vec::new();
            for reduction in [Reduction::SleepSet, Reduction::SleepSetMemo] {
                for threads in [1, 2, 4] {
                    let opts = CheckOptions {
                        threads,
                        reduction,
                        early_exit: false,
                        ..CheckOptions::default()
                    };
                    let report = check_program_with(&p, model, &opts).unwrap_or_else(|e| {
                        panic!("{}: {reduction:?} failed under {model} x{threads}: {e}", p.name())
                    });
                    assert_eq!(
                        report.verdict,
                        reference.verdict,
                        "{}: {reduction:?} verdict diverged under {model} at {threads} threads",
                        p.name()
                    );
                    assert_eq!(
                        keys(&report),
                        reference_keys,
                        "{}: {reduction:?} race keys diverged under {model} at {threads} threads",
                        p.name()
                    );
                    if reduction == Reduction::SleepSetMemo {
                        memoized.push((threads, format!("{report:?}")));
                    }
                }
            }
            let (_, first) = &memoized[0];
            for (threads, debug) in &memoized[1..] {
                assert_eq!(
                    debug,
                    first,
                    "{}: memoized report differs between 1 and {threads} threads under {model}",
                    p.name()
                );
            }
        }
    }
}
