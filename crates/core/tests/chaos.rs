//! Chaos suite for the resilient checker: deterministic fault
//! injection (panics, stalls, budget exhaustion) must always come back
//! as a structured `Degraded`/`Inconclusive` report — never a process
//! abort — and checkpoint/resume must reproduce the uninterrupted
//! report exactly.

use drfrlx_core::checker::{
    check_program_resilient, check_program_with, CheckOptions, CheckReport, CheckResilience,
    RaceKey,
};
use drfrlx_core::exec::{EnumLimits, Reduction};
use drfrlx_core::resilience::{Budget, EngineId, ExhaustReason, Fault, FaultPlan, RunStatus};
use drfrlx_core::{MemoryModel, OpClass, Program};
use std::sync::Arc;
use std::time::Duration;

/// A program whose interleaving tree overflows the 512-execution
/// sharding probe: every store conflicts (same location), so sleep
/// sets prune nothing and 3 threads × 3 stores give 9!/(3!)^3 =
/// 1 680 interleavings.
fn wide() -> Program {
    let mut p = Program::new("wide");
    for t in 0..3 {
        let mut th = p.thread();
        for i in 0..3 {
            th.store(OpClass::Data, "x", (t * 3 + i) as i64);
        }
    }
    p.build()
}

/// Everything a report asserts on, comparable.
#[allow(clippy::type_complexity)]
fn sig(r: &CheckReport) -> (usize, usize, usize, usize, bool, Vec<(RaceKey, usize, String)>) {
    (
        r.executions,
        r.pruned,
        r.memo_pruned,
        r.table_peak,
        r.is_race_free(),
        r.races.iter().map(|f| (f.key, f.exec_index, f.description.clone())).collect(),
    )
}

fn keys(r: &CheckReport) -> Vec<RaceKey> {
    r.races.iter().map(|f| f.key).collect()
}

fn opts(threads: usize) -> CheckOptions {
    CheckOptions { threads, early_exit: false, ..CheckOptions::default() }
}

#[test]
fn resilient_complete_run_matches_the_plain_checker() {
    let p = wide();
    for reduction in [Reduction::SleepSet, Reduction::SleepSetMemo] {
        let o = CheckOptions { reduction, ..opts(1) };
        let plain = check_program_with(&p, MemoryModel::Drfrlx, &o).unwrap();
        for threads in [1, 4] {
            let o = CheckOptions { reduction, ..opts(threads) };
            let out =
                check_program_resilient(&p, MemoryModel::Drfrlx, &o, &CheckResilience::default());
            assert_eq!(out.status, RunStatus::Complete, "{reduction:?} t={threads}");
            assert_eq!(sig(&out.report), sig(&plain), "{reduction:?} t={threads}");
        }
    }
}

#[test]
fn injected_panic_is_retried_and_the_run_completes() {
    let p = wide();
    let plain = check_program_with(&p, MemoryModel::Drfrlx, &opts(1)).unwrap();
    let res = CheckResilience {
        fault_plan: Some(FaultPlan::pinned(EngineId::Checker, 2, 1, Fault::Panic)),
        ..CheckResilience::default()
    };
    let out = check_program_resilient(&p, MemoryModel::Drfrlx, &opts(1), &res);
    assert_eq!(out.status, RunStatus::Complete, "one panic is absorbed by the retry");
    assert_eq!(sig(&out.report), sig(&plain));
}

#[test]
fn injected_stall_is_retried_and_the_run_completes() {
    let p = wide();
    let plain = check_program_with(&p, MemoryModel::Drfrlx, &opts(1)).unwrap();
    let res = CheckResilience {
        fault_plan: Some(FaultPlan::pinned(EngineId::Checker, 0, 1, Fault::Stall)),
        ..CheckResilience::default()
    };
    let out = check_program_resilient(&p, MemoryModel::Drfrlx, &opts(1), &res);
    assert_eq!(out.status, RunStatus::Complete);
    assert_eq!(sig(&out.report), sig(&plain));
}

#[test]
fn repeated_panic_degrades_instead_of_aborting() {
    let p = wide();
    let plain = check_program_with(&p, MemoryModel::Drfrlx, &opts(1)).unwrap();
    let res = CheckResilience {
        fault_plan: Some(FaultPlan::pinned(EngineId::Checker, 3, 2, Fault::Panic)),
        ..CheckResilience::default()
    };
    for threads in [1, 4] {
        let out = check_program_resilient(&p, MemoryModel::Drfrlx, &opts(threads), &res);
        assert_eq!(out.status, RunStatus::Degraded { lost: vec![3] }, "t={threads}");
        // Prefix-soundness: a degraded report never invents races.
        for k in keys(&out.report) {
            assert!(keys(&plain).contains(&k), "t={threads}: degraded race {k:?} not in full set");
        }
        assert!(out.report.executions < plain.executions, "t={threads}");
    }
}

#[test]
fn execution_budget_yields_inconclusive_with_a_frontier() {
    let p = wide();
    let plain = check_program_with(&p, MemoryModel::Drfrlx, &opts(1)).unwrap();
    // Above the probe budget (so the run shards), below the full tree.
    let o = CheckOptions {
        limits: EnumLimits { max_executions: 600, ..EnumLimits::default() },
        ..opts(1)
    };
    let out = check_program_resilient(&p, MemoryModel::Drfrlx, &o, &CheckResilience::default());
    match &out.status {
        RunStatus::Inconclusive { reason, frontier } => {
            assert_eq!(*reason, ExhaustReason::Executions { limit: 600 });
            assert!(!frontier.is_empty());
            assert_eq!(
                frontier.len() + out.shards.len(),
                out.total_shards,
                "every shard is either completed or on the frontier"
            );
        }
        s => panic!("expected Inconclusive, got {s:?}"),
    }
    // Prefix-soundness: explored ≤ unbudgeted, races ⊆ unbudgeted.
    assert!(out.report.executions <= plain.executions);
    for k in keys(&out.report) {
        assert!(keys(&plain).contains(&k));
    }
}

#[test]
fn an_expired_deadline_yields_inconclusive_not_an_abort() {
    let p = wide();
    let o = CheckOptions {
        limits: EnumLimits {
            budget: Some(Arc::new(Budget::with_timeout(Duration::from_secs(0)))),
            ..EnumLimits::default()
        },
        ..opts(2)
    };
    let out = check_program_resilient(&p, MemoryModel::Drfrlx, &o, &CheckResilience::default());
    match out.status {
        RunStatus::Inconclusive { reason, .. } => {
            assert!(
                matches!(reason, ExhaustReason::Deadline | ExhaustReason::Cancelled),
                "got {reason:?}"
            );
        }
        s => panic!("expected Inconclusive, got {s:?}"),
    }
}

#[test]
fn cancellation_mid_run_keeps_a_sound_prefix() {
    let p = wide();
    let budget = Arc::new(Budget::unlimited());
    budget.cancel();
    let o = CheckOptions {
        limits: EnumLimits { budget: Some(budget), ..EnumLimits::default() },
        ..opts(1)
    };
    let out = check_program_resilient(&p, MemoryModel::Drfrlx, &o, &CheckResilience::default());
    match out.status {
        RunStatus::Inconclusive { reason: ExhaustReason::Cancelled, .. } => {}
        s => panic!("expected Inconclusive(Cancelled), got {s:?}"),
    }
}

#[test]
fn resume_reproduces_the_uninterrupted_report_exactly() {
    let p = wide();
    let uninterrupted =
        check_program_resilient(&p, MemoryModel::Drfrlx, &opts(1), &CheckResilience::default());
    assert_eq!(uninterrupted.status, RunStatus::Complete);

    // Leg 1: a tight execution budget interrupts the run mid-plan.
    let tight = CheckOptions {
        limits: EnumLimits { max_executions: 600, ..EnumLimits::default() },
        ..opts(1)
    };
    let leg1 =
        check_program_resilient(&p, MemoryModel::Drfrlx, &tight, &CheckResilience::default());
    assert!(matches!(leg1.status, RunStatus::Inconclusive { .. }));
    assert!(!leg1.shards.is_empty(), "the interruption left completed shards to checkpoint");

    // Leg 2: resume from leg 1's completed shards with the full budget.
    let res = CheckResilience { fault_plan: None, completed: leg1.shards };
    let leg2 = check_program_resilient(&p, MemoryModel::Drfrlx, &opts(1), &res);
    assert_eq!(leg2.status, RunStatus::Complete);
    assert_eq!(sig(&leg2.report), sig(&uninterrupted.report), "resumed == uninterrupted");
    assert_eq!(leg2.shards.len(), uninterrupted.shards.len());
}

#[test]
fn seeded_fault_plans_are_deterministic_and_never_abort() {
    let p = wide();
    for seed in 1..=5u64 {
        let res = CheckResilience {
            fault_plan: Some(FaultPlan::seeded(seed)),
            ..CheckResilience::default()
        };
        let a = check_program_resilient(&p, MemoryModel::Drfrlx, &opts(1), &res);
        let b = check_program_resilient(&p, MemoryModel::Drfrlx, &opts(1), &res);
        assert_eq!(a.status, b.status, "seed {seed}");
        assert_eq!(sig(&a.report), sig(&b.report), "seed {seed}");
        // A seeded plan never injects at attempt 1 in exactly the
        // spots it hit at attempt 0 unless the hash says so, so some
        // shards may be lost — but the run must always end in a
        // structured status.
        match &a.status {
            RunStatus::Complete | RunStatus::Degraded { .. } | RunStatus::Inconclusive { .. } => {}
        }
    }
}
