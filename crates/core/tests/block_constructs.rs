//! Checker semantics of the block-structured instructions —
//! `Instr::Think`, `Instr::Barrier`, `Instr::ScratchLoad`,
//! `Instr::ScratchStore` — the variants the program pipeline lowers
//! for the micro workloads.
//!
//! Contract under test (see `drfrlx_core::program`):
//! * **Think** is a pure timing hint: invisible to enumeration and to
//!   the race axioms.
//! * **Barrier** is a synchronization edge: it rendezvouses *all*
//!   program threads, orders everything before it on every thread
//!   against everything after it on every thread, and an unbalanced
//!   barrier deadlocks — the search path is dropped with no result.
//! * **Scratch** is block-local storage, invisible to the race
//!   axioms; values flow through it (and taint flows with them, so an
//!   observation after a scratch load still marks the producing
//!   events observed).

use drfrlx_core::exec::EnumLimits;
use drfrlx_core::prelude::*;
use drfrlx_core::program::{BinOp, Reg};
use drfrlx_core::{check_program, MemoryModel, OpClass};

/// Two racy relaxed increments, optionally padded with think cycles.
fn counter(think: bool) -> Program {
    let mut p = Program::new("counter");
    for _ in 0..2 {
        let mut t = p.thread();
        if think {
            t.think(5);
        }
        t.rmw(OpClass::Commutative, "c", RmwOp::FetchAdd, 1);
        if think {
            t.think(3);
        }
    }
    p.build()
}

#[test]
fn think_changes_neither_executions_nor_verdict() {
    let plain = check_program(&counter(false), MemoryModel::Drfrlx);
    let padded = check_program(&counter(true), MemoryModel::Drfrlx);
    assert_eq!(plain.executions, padded.executions, "think must not add interleavings");
    assert_eq!(plain.is_race_free(), padded.is_race_free());
    assert_eq!(plain.races.len(), padded.races.len());
}

/// Message passing through a barrier instead of an atomic: plain data
/// accesses on both sides, ordered only by the rendezvous.
fn mp_through_barrier(with_barrier: bool) -> Program {
    let mut p = Program::new("mp_barrier");
    {
        let mut t = p.thread();
        t.store(OpClass::Data, "x", 7);
        if with_barrier {
            t.barrier();
        }
    }
    {
        let mut t = p.thread();
        if with_barrier {
            t.barrier();
        }
        let r = t.load(OpClass::Data, "x");
        t.observe(r);
    }
    p.build()
}

#[test]
fn barrier_is_a_synchronization_edge_for_plain_data() {
    let r = check_program(&mp_through_barrier(true), MemoryModel::Drfrlx);
    assert!(
        r.is_race_free(),
        "the rendezvous orders the store before the load; found {:?}",
        r.races.iter().map(|f| &f.description).collect::<Vec<_>>()
    );
    // And the data actually flows: the single execution reads 7.
    let execs = enumerate_sc(&mp_through_barrier(true), &EnumLimits::default()).unwrap();
    assert_eq!(execs.len(), 1, "both orders collapse to store-then-load");
    assert_eq!(execs[0].result.regs[1][&Reg(0)], 7);
}

#[test]
fn without_the_barrier_the_same_accesses_race() {
    let r = check_program(&mp_through_barrier(false), MemoryModel::Drfrlx);
    assert!(!r.is_race_free(), "unordered plain accesses must race");
}

#[test]
fn unbalanced_barrier_deadlocks_and_drops_the_path() {
    let mut p = Program::new("unbalanced");
    {
        let mut t = p.thread();
        t.barrier();
        t.store(OpClass::Data, "x", 1);
    }
    {
        let mut t = p.thread();
        t.store(OpClass::Data, "y", 1);
        // No barrier: the rendezvous can never complete.
    }
    let p = p.build();
    let execs = enumerate_sc(&p, &EnumLimits::default()).unwrap();
    assert!(execs.is_empty(), "a deadlocked rendezvous yields no completed execution");
}

/// The bridge's histogram shape in miniature: both threads publish
/// into scratch, rendezvous, and thread 0 sums the rows into memory.
fn scratch_reduce() -> Program {
    let mut p = Program::new("scratch_reduce");
    {
        let mut t = p.thread();
        t.scratch_store(0, 7);
        t.barrier();
        let a = t.scratch_load(0);
        let b = t.scratch_load(1);
        t.store(OpClass::Data, "sum", Expr::bin(BinOp::Add, a.into(), b.into()));
    }
    {
        let mut t = p.thread();
        t.scratch_store(1, 5);
        t.barrier();
    }
    p.build()
}

#[test]
fn scratch_values_flow_across_the_barrier() {
    let p = scratch_reduce();
    let r = check_program(&p, MemoryModel::Drfrlx);
    assert!(r.is_race_free(), "scratch accesses are invisible to the race axioms");
    let execs = enumerate_sc(&p, &EnumLimits::default()).unwrap();
    assert_eq!(execs.len(), 1);
    let sum = p.find_loc("sum").unwrap();
    assert_eq!(execs[0].result.memory[&sum], 12, "7 + 5 through the scratchpad");
}

#[test]
fn unwritten_scratch_reads_as_zero() {
    let mut p = Program::new("scratch_zero");
    {
        let mut t = p.thread();
        let r = t.scratch_load(3);
        t.store(OpClass::Data, "out", r);
    }
    let p = p.build();
    let execs = enumerate_sc(&p, &EnumLimits::default()).unwrap();
    assert_eq!(execs[0].result.memory[&p.find_loc("out").unwrap()], 0);
}

#[test]
fn block_constructs_emit_and_parse_to_a_fixpoint() {
    let p = scratch_reduce();
    let text = drfrlx_core::emit::emit(&p);
    for needle in ["barrier;", "sstore 0 7;", "= sload 0;", "= sload 1;"] {
        assert!(text.contains(needle), "emitted text lacks `{needle}`:\n{text}");
    }
    let reparsed = drfrlx_core::parse::parse(&text).expect("emitted text parses");
    assert_eq!(drfrlx_core::emit::emit(&reparsed), text, "emit→parse→emit fixpoint");
    // And a thinking program round-trips too.
    let q = counter(true);
    let qt = drfrlx_core::emit::emit(&q);
    assert!(qt.contains("think 5;"));
    assert_eq!(drfrlx_core::emit::emit(&drfrlx_core::parse::parse(&qt).unwrap()), qt);
}
