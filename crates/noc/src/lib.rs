//! # hsim-noc — mesh network-on-chip timing model
//!
//! A substitute for the Garnet interconnect model used by the paper's
//! simulator (§4.2): a `width × height` mesh with X-Y dimension-ordered
//! routing, per-hop router + link latency, and per-link bandwidth
//! contention.
//!
//! The model is *timeline-based*: every unidirectional link keeps the
//! cycle at which it next becomes free; a message reserves each link of
//! its route in order, so two messages crossing the same link serialize
//! and congestion propagates exactly as far as routes overlap. This
//! captures the first-order contention effects that matter to the
//! paper's evaluation (L2-bank hotspots under atomic storms) at a
//! fraction of the cost of flit-level simulation.
//!
//! ```
//! use hsim_noc::{Mesh, NocParams, NodeId};
//!
//! let mut mesh = Mesh::new(NocParams::default());
//! let arrival = mesh.send(0, NodeId(0), NodeId(15), 1);
//! assert!(arrival > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mesh;
mod route;

pub use mesh::{LinkStats, Mesh, NocParams, NocStats};
pub use route::{manhattan, route_xy, Coord};

/// A node on the mesh (one per CPU core / GPU CU, each with an L2 bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

/// Simulation time in cycles.
pub type Cycle = u64;
