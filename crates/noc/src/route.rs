//! X-Y dimension-ordered routing.

use crate::NodeId;

/// Mesh coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl Coord {
    /// Node id of this coordinate on a mesh of the given width.
    pub fn node(self, width: u16) -> NodeId {
        NodeId(self.y * width + self.x)
    }

    /// Coordinate of a node id on a mesh of the given width.
    pub fn of(node: NodeId, width: u16) -> Coord {
        Coord { x: node.0 % width, y: node.0 / width }
    }
}

/// Manhattan distance between two nodes.
pub fn manhattan(width: u16, a: NodeId, b: NodeId) -> u16 {
    let (ca, cb) = (Coord::of(a, width), Coord::of(b, width));
    ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
}

/// The X-Y route from `src` to `dst`: the sequence of nodes visited
/// (excluding `src`, including `dst`). Deadlock-free dimension-ordered
/// routing, as in Garnet's default configuration.
///
/// ```
/// use hsim_noc::{route_xy, NodeId};
/// // On a 4-wide mesh, 0 → 5 goes right then down.
/// assert_eq!(route_xy(4, NodeId(0), NodeId(5)), vec![NodeId(1), NodeId(5)]);
/// ```
pub fn route_xy(width: u16, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let mut cur = Coord::of(src, width);
    let to = Coord::of(dst, width);
    let mut out = Vec::with_capacity(manhattan(width, src, dst) as usize);
    while cur.x != to.x {
        cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        out.push(cur.node(width));
    }
    while cur.y != to.y {
        cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        out.push(cur.node(width));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        for n in 0..16 {
            let c = Coord::of(NodeId(n), 4);
            assert_eq!(c.node(4), NodeId(n));
        }
    }

    #[test]
    fn route_lengths_match_manhattan() {
        for a in 0..16 {
            for b in 0..16 {
                let r = route_xy(4, NodeId(a), NodeId(b));
                assert_eq!(r.len() as u16, manhattan(4, NodeId(a), NodeId(b)));
                if a != b {
                    assert_eq!(*r.last().unwrap(), NodeId(b));
                }
            }
        }
    }

    #[test]
    fn x_dimension_first() {
        // 0 (0,0) -> 15 (3,3): move along x to 3, then down.
        let r = route_xy(4, NodeId(0), NodeId(15));
        assert_eq!(r, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(7), NodeId(11), NodeId(15)]);
    }

    #[test]
    fn self_route_is_empty() {
        assert!(route_xy(4, NodeId(5), NodeId(5)).is_empty());
    }
}
