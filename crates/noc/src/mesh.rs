//! The mesh itself: link reservation timelines and statistics.
//!
//! Link state lives in flat per-direction tables indexed by
//! `node * 4 + direction`, so the per-hop inner loop of [`Mesh::send`]
//! is two array reads — no ordered-map lookups and no route-vector
//! allocation (the X-Y walk is computed inline).

use crate::route::Coord;
use crate::{Cycle, NodeId};
use hsim_trace::{EventKind, NoTrace, Trace, TraceEvent};
use std::collections::BTreeMap;

/// Mesh configuration.
#[derive(Debug, Clone)]
pub struct NocParams {
    /// Mesh width (nodes per row).
    pub width: u16,
    /// Mesh height (rows).
    pub height: u16,
    /// Router pipeline + link traversal latency per hop, in cycles.
    pub hop_latency: u64,
    /// Cycles a link is occupied per flit (1 / bandwidth).
    pub cycles_per_flit: u64,
    /// Extra latency injected/ejected at the local port.
    pub local_latency: u64,
}

impl Default for NocParams {
    fn default() -> Self {
        // A 4x4 mesh as in the paper's Table 2 platform.
        NocParams { width: 4, height: 4, hop_latency: 3, cycles_per_flit: 1, local_latency: 1 }
    }
}

/// Per-link usage statistics.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Flits carried.
    pub flits: u64,
    /// Messages carried.
    pub messages: u64,
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total flit-hops (the energy-relevant quantity).
    pub flit_hops: u64,
    /// Sum of end-to-end latencies (for averages).
    pub total_latency: u64,
    /// Cycles of queueing delay suffered due to contention.
    pub contention_cycles: u64,
}

impl NocStats {
    /// Average end-to-end message latency.
    pub fn avg_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }
}

/// A mesh network with timeline-based link contention.
///
/// ```
/// use hsim_noc::{Mesh, NocParams, NodeId};
///
/// let mut mesh = Mesh::new(NocParams::default());
/// // Two messages crossing the same first link serialize:
/// let first = mesh.send(0, NodeId(0), NodeId(3), 4);
/// let second = mesh.send(0, NodeId(0), NodeId(3), 4);
/// assert!(second > first);
/// assert!(mesh.stats().contention_cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Mesh<T: Trace = NoTrace> {
    params: NocParams,
    /// next-free cycle per directed link, indexed by
    /// `node * 4 + direction` ([`Dir`]).
    links_free: Vec<Cycle>,
    /// usage statistics, same indexing as `links_free`.
    link_stats: Vec<LinkStats>,
    stats: NocStats,
    tracer: T,
}

/// Outgoing link direction from a node. The discriminants index the
/// flat link tables.
#[derive(Debug, Clone, Copy)]
enum Dir {
    East = 0,
    West = 1,
    South = 2,
    North = 3,
}

impl Dir {
    /// The neighbor one hop along `self` from `node` (caller guarantees
    /// it stays on the mesh).
    fn step(self, node: u16, width: u16) -> u16 {
        match self {
            Dir::East => node + 1,
            Dir::West => node - 1,
            Dir::South => node + width,
            Dir::North => node - width,
        }
    }
}

impl Mesh {
    /// Create an untraced mesh.
    ///
    /// # Panics
    ///
    /// Panics if the mesh has no nodes.
    pub fn new(params: NocParams) -> Mesh {
        Mesh::with_tracer(params, NoTrace)
    }
}

impl<T: Trace> Mesh<T> {
    /// Create a mesh emitting [`EventKind::NocHop`] /
    /// [`EventKind::NocStall`] events into `tracer` (lane = the flat
    /// link index `node * 4 + direction`).
    ///
    /// # Panics
    ///
    /// Panics if the mesh has no nodes.
    pub fn with_tracer(params: NocParams, tracer: T) -> Mesh<T> {
        assert!(params.width > 0 && params.height > 0, "mesh must have nodes");
        let slots = params.width as usize * params.height as usize * 4;
        Mesh {
            params,
            links_free: vec![0; slots],
            link_stats: vec![LinkStats::default(); slots],
            stats: NocStats::default(),
            tracer,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u16 {
        self.params.width * self.params.height
    }

    /// Configuration.
    pub fn params(&self) -> &NocParams {
        &self.params
    }

    /// Send a `flits`-flit message from `src` to `dst` departing at
    /// `depart`; returns the arrival cycle. Reserves every link on the
    /// X-Y route, modelling head-of-line contention.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not on the mesh.
    pub fn send(&mut self, depart: Cycle, src: NodeId, dst: NodeId, flits: u64) -> Cycle {
        assert!(src.0 < self.nodes() && dst.0 < self.nodes(), "node off mesh");
        let flits = flits.max(1);
        self.stats.messages += 1;
        if src == dst {
            // Local port loopback: no links, just ejection latency.
            let arrival = depart + self.params.local_latency;
            self.stats.total_latency += arrival - depart;
            return arrival;
        }
        let mut at = depart + self.params.local_latency;
        let occupancy = flits * self.params.cycles_per_flit;
        // Inline X-Y walk (matches `route_xy`): hop east/west until the
        // column matches, then north/south.
        let width = self.params.width;
        let (mut cur, to) = (Coord::of(src, width), Coord::of(dst, width));
        let mut node = src.0;
        let mut hop = |node: &mut u16, dir: Dir, at: &mut Cycle| {
            let li = *node as usize * 4 + dir as usize;
            let free = &mut self.links_free[li];
            let start = (*at).max(*free);
            self.stats.contention_cycles += start - *at;
            if T::ENABLED {
                if start > *at {
                    self.tracer.record(TraceEvent::new(
                        EventKind::NocStall,
                        *at,
                        li as u16,
                        dst.0 as u64,
                        flits,
                        start - *at,
                    ));
                }
                self.tracer.record(TraceEvent::new(
                    EventKind::NocHop,
                    start,
                    li as u16,
                    dst.0 as u64,
                    flits,
                    self.params.hop_latency,
                ));
            }
            *free = start + occupancy;
            *at = start + self.params.hop_latency;
            let ls = &mut self.link_stats[li];
            ls.flits += flits;
            ls.messages += 1;
            self.stats.flit_hops += flits;
            *node = dir.step(*node, width);
        };
        while cur.x != to.x {
            let dir = if to.x > cur.x { Dir::East } else { Dir::West };
            cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            hop(&mut node, dir, &mut at);
        }
        while cur.y != to.y {
            let dir = if to.y > cur.y { Dir::South } else { Dir::North };
            cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            hop(&mut node, dir, &mut at);
        }
        debug_assert_eq!(node, dst.0);
        let arrival = at + self.params.local_latency;
        self.stats.total_latency += arrival - depart;
        arrival
    }

    /// The zero-load latency between two nodes (no contention), useful
    /// for configuring cache access latencies.
    pub fn zero_load_latency(&self, src: NodeId, dst: NodeId, flits: u64) -> u64 {
        let hops = crate::route::manhattan(self.params.width, src, dst) as u64;
        if hops == 0 {
            return self.params.local_latency;
        }
        2 * self.params.local_latency
            + hops * self.params.hop_latency
            + (flits.max(1) - 1) * self.params.cycles_per_flit
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Per-link statistics for links that carried traffic, keyed by
    /// `(from, to)`. Built on demand — a diagnostic accessor, not a hot
    /// path.
    pub fn link_stats(&self) -> BTreeMap<(NodeId, NodeId), LinkStats> {
        let width = self.params.width;
        let dirs = [Dir::East, Dir::West, Dir::South, Dir::North];
        self.link_stats
            .iter()
            .enumerate()
            .filter(|(_, ls)| ls.messages > 0)
            .map(|(li, ls)| {
                let node = (li / 4) as u16;
                let dir = dirs[li % 4];
                ((NodeId(node), NodeId(dir.step(node, width))), ls.clone())
            })
            .collect()
    }

    /// Reset statistics and link reservations (start of a new run).
    pub fn reset(&mut self) {
        self.links_free.fill(0);
        self.link_stats.fill(LinkStats::default());
        self.stats = NocStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(NocParams::default())
    }

    #[test]
    fn zero_load_latency_scales_with_distance() {
        let m = mesh();
        let near = m.zero_load_latency(NodeId(0), NodeId(1), 1);
        let far = m.zero_load_latency(NodeId(0), NodeId(15), 1);
        assert!(far > near);
        assert_eq!(far - near, 5 * m.params().hop_latency);
    }

    #[test]
    fn uncontended_send_matches_zero_load() {
        let mut m = mesh();
        let a = m.send(100, NodeId(0), NodeId(15), 1);
        assert_eq!(a - 100, m.zero_load_latency(NodeId(0), NodeId(15), 1));
    }

    #[test]
    fn same_link_messages_serialize() {
        let mut m = mesh();
        let a1 = m.send(0, NodeId(0), NodeId(1), 8);
        let a2 = m.send(0, NodeId(0), NodeId(1), 8);
        assert!(a2 > a1, "second message must queue behind the first");
        assert!(m.stats().contention_cycles > 0);
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let mut m = mesh();
        let a1 = m.send(0, NodeId(0), NodeId(1), 8);
        let a2 = m.send(0, NodeId(14), NodeId(15), 8);
        assert_eq!(a1, a2);
        assert_eq!(m.stats().contention_cycles, 0);
    }

    #[test]
    fn local_delivery_is_cheap() {
        let mut m = mesh();
        let a = m.send(10, NodeId(3), NodeId(3), 4);
        assert_eq!(a, 10 + m.params().local_latency);
        assert_eq!(m.stats().flit_hops, 0);
    }

    #[test]
    fn flit_hops_counted_per_hop() {
        let mut m = mesh();
        m.send(0, NodeId(0), NodeId(3), 2); // 3 hops x 2 flits
        assert_eq!(m.stats().flit_hops, 6);
    }

    #[test]
    fn hotspot_contention_accumulates() {
        let mut m = mesh();
        // Many nodes hammer node 5 simultaneously.
        for n in [NodeId(4), NodeId(6), NodeId(1), NodeId(9), NodeId(7)] {
            m.send(0, n, NodeId(5), 4);
            m.send(0, n, NodeId(5), 4);
        }
        let s = m.stats().clone();
        assert!(s.avg_latency() > m.zero_load_latency(NodeId(4), NodeId(5), 4) as f64);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = mesh();
        m.send(0, NodeId(0), NodeId(1), 1);
        m.reset();
        assert_eq!(m.stats().messages, 0);
        let a = m.send(0, NodeId(0), NodeId(1), 1);
        assert_eq!(a, m.zero_load_latency(NodeId(0), NodeId(1), 1));
    }

    #[test]
    #[should_panic(expected = "node off mesh")]
    fn off_mesh_node_rejected() {
        mesh().send(0, NodeId(0), NodeId(99), 1);
    }

    /// The flat link tables must agree, hop for hop, with a map-keyed
    /// reference that walks `route_xy` explicitly.
    #[test]
    fn flat_tables_match_map_reference() {
        use crate::route::route_xy;

        struct Reference {
            p: NocParams,
            links: BTreeMap<(NodeId, NodeId), Cycle>,
            stats: BTreeMap<(NodeId, NodeId), LinkStats>,
        }
        impl Reference {
            fn send(&mut self, depart: Cycle, src: NodeId, dst: NodeId, flits: u64) -> Cycle {
                if src == dst {
                    return depart + self.p.local_latency;
                }
                let mut at = depart + self.p.local_latency;
                let mut prev = src;
                for hop in route_xy(self.p.width, src, dst) {
                    let free = self.links.entry((prev, hop)).or_insert(0);
                    let start = at.max(*free);
                    *free = start + flits * self.p.cycles_per_flit;
                    at = start + self.p.hop_latency;
                    let ls = self.stats.entry((prev, hop)).or_default();
                    ls.flits += flits;
                    ls.messages += 1;
                    prev = hop;
                }
                at + self.p.local_latency
            }
        }

        let p = NocParams { width: 5, height: 3, ..NocParams::default() };
        let mut m = Mesh::new(p.clone());
        let mut r = Reference { p, links: BTreeMap::new(), stats: BTreeMap::new() };
        // Deterministic traffic pattern mixing hotspots and crossings.
        let n = m.nodes() as u64;
        let mut seed = 0x5EEDu64;
        for i in 0..200u64 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let src = NodeId(((seed >> 33) % n) as u16 % m.nodes());
            let dst = NodeId((seed >> 17) as u16 % m.nodes());
            let flits = 1 + (seed % 7);
            let depart = i * 3;
            assert_eq!(m.send(depart, src, dst, flits), r.send(depart, src, dst, flits));
        }
        for (link, ls) in m.link_stats() {
            let rs = r.stats.get(&link).expect("link exists in reference");
            assert_eq!((ls.flits, ls.messages), (rs.flits, rs.messages), "{link:?}");
        }
        assert_eq!(m.link_stats().len(), r.stats.len());
    }
}
