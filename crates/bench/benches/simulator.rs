//! Benchmarks for the full-system simulator: cycles-per-host-second on
//! representative kernels under the slowest (GD0) and most permissive
//! (DDR) configurations. Plain `harness = false` timing
//! (offline-friendly), plus a sweep-engine scaling measurement.

use drfrlx_bench::timing::{bench, TimingConfig};
use drfrlx_core::SystemConfig;
use drfrlx_workloads::micro::{HistGlobal, HistParams, Seqlocks};
use hsim_sys::{run_matrix, run_workload, six_config_jobs, SysParams};
use std::sync::Arc;

fn small_hg() -> HistGlobal {
    HistGlobal::new(
        HistParams { bins: 64, per_thread: 16, blocks: 8, tpb: 8, seed: 3 },
        drfrlx_core::OpClass::Commutative,
    )
}

fn main() {
    let cfg = TimingConfig::default();
    let params = SysParams::integrated();

    let k = small_hg();
    for abbrev in ["GD0", "DDR"] {
        let config = SystemConfig::from_abbrev(abbrev).unwrap();
        bench(&format!("simulate/hg_small/{abbrev}"), &cfg, || {
            run_workload(&k, config, &params).cycles
        });
    }

    let seq = Seqlocks::new(false, 4, 8, 4, 4, 4, 32);
    let config = SystemConfig::from_abbrev("DDR").unwrap();
    bench("simulate/seqlock_small/DDR", &cfg, || run_workload(&seq, config, &params).cycles);

    // The sweep engine itself: the six-config matrix serial vs parallel.
    let kernel: Arc<dyn hsim_gpu::Kernel> = Arc::new(small_hg());
    for threads in [1usize, 4] {
        let jobs = six_config_jobs("HG", Arc::clone(&kernel), &params, false);
        bench(&format!("run_matrix/hg_small_x6/threads={threads}"), &cfg, || {
            run_matrix(&jobs, threads).len()
        });
    }
}
