//! Criterion benchmarks for the full-system simulator: cycles-per-host-
//! second on representative kernels under the slowest (GD0) and most
//! permissive (DDR) configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use drfrlx_core::SystemConfig;
use drfrlx_workloads::micro::{HistGlobal, HistParams, Seqlocks};
use hsim_sys::{run_workload, SysParams};

fn small_hg() -> HistGlobal {
    HistGlobal { params: HistParams { bins: 64, per_thread: 16, blocks: 8, tpb: 8, seed: 3 }, ..Default::default() }
}

fn bench_configs(c: &mut Criterion) {
    let params = SysParams::integrated();
    let k = small_hg();
    for cfg in ["GD0", "DDR"] {
        let config = SystemConfig::from_abbrev(cfg).unwrap();
        c.bench_function(&format!("simulate/hg_small/{cfg}"), |b| {
            b.iter(|| run_workload(&k, config, &params).cycles)
        });
    }
}

fn bench_seqlock(c: &mut Criterion) {
    let params = SysParams::integrated();
    let k = Seqlocks { acqrel: false, blocks: 4, tpb: 8, payload: 4, writes: 4, reads: 4, max_retries: 32 };
    let config = SystemConfig::from_abbrev("DDR").unwrap();
    c.bench_function("simulate/seqlock_small/DDR", |b| {
        b.iter(|| run_workload(&k, config, &params).cycles)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10);
    targets = bench_configs, bench_seqlock
}
criterion_main!(benches);
