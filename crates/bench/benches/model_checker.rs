//! Criterion benchmarks for the memory-model tooling: SC enumeration,
//! Listing 7 race analysis, the whole-program checker, and the
//! system-centric relaxed machine.

use criterion::{criterion_group, criterion_main, Criterion};
use drfrlx_core::checker::try_check_program;
use drfrlx_core::exec::{enumerate_sc, EnumLimits};
use drfrlx_core::races::analyze;
use drfrlx_core::syscentric::explore_relaxed;
use drfrlx_core::MemoryModel;
use drfrlx_litmus::usecases;

fn bench_enumeration(c: &mut Criterion) {
    let p = usecases::seqlock();
    let limits = EnumLimits::default();
    c.bench_function("enumerate_sc/seqlock", |b| {
        b.iter(|| enumerate_sc(&p, &limits).expect("enumerable").len())
    });
}

fn bench_race_analysis(c: &mut Criterion) {
    let p = usecases::flags();
    let limits = EnumLimits::default();
    let execs = enumerate_sc(&p, &limits).expect("enumerable");
    c.bench_function("analyze/flags_all_executions", |b| {
        b.iter(|| execs.iter().map(|e| analyze(e).races().len()).sum::<usize>())
    });
}

fn bench_checker(c: &mut Criterion) {
    let limits = EnumLimits::default();
    for (name, p) in [
        ("work_queue", usecases::work_queue()),
        ("event_counter", usecases::event_counter()),
        ("split_counter", usecases::split_counter()),
    ] {
        c.bench_function(&format!("check_program/{name}"), |b| {
            b.iter(|| {
                try_check_program(&p, MemoryModel::Drfrlx, &limits)
                    .expect("enumerable")
                    .is_race_free()
            })
        });
    }
}

fn bench_relaxed_machine(c: &mut Criterion) {
    let p = usecases::event_counter();
    let limits = EnumLimits::default();
    c.bench_function("explore_relaxed/event_counter", |b| {
        b.iter(|| explore_relaxed(&p, MemoryModel::Drfrlx, &limits).expect("explorable").schedules)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10);
    targets = bench_enumeration,     bench_race_analysis,     bench_checker,     bench_relaxed_machine
}
criterion_main!(benches);
