//! Benchmarks for the memory-model tooling: SC enumeration, Listing 7
//! race analysis, the whole-program checker, and the system-centric
//! relaxed machine. Plain `harness = false` timing (offline-friendly).

use drfrlx_bench::timing::{bench, TimingConfig};
use drfrlx_core::checker::{check_program_with, try_check_program, CheckOptions};
use drfrlx_core::exec::{
    enumerate_sc, visit_sc, EnumLimits, Execution, ExecutionVisitor, Reduction,
};
use drfrlx_core::races::analyze;
use drfrlx_core::syscentric::explore_relaxed;
use drfrlx_core::MemoryModel;
use drfrlx_litmus::{stress, usecases};

struct Count(usize);

impl ExecutionVisitor for Count {
    fn visit(&mut self, _e: &Execution) -> bool {
        self.0 += 1;
        true
    }
}

fn main() {
    let cfg = TimingConfig::default();
    let limits = EnumLimits::default();

    let seqlock = usecases::seqlock();
    bench("enumerate_sc/seqlock", &cfg, || {
        enumerate_sc(&seqlock, &limits).expect("enumerable").len()
    });

    bench("visit_sc_exhaustive/seqlock", &cfg, || {
        let mut c = Count(0);
        visit_sc(&seqlock, &limits, false, Reduction::Exhaustive, &mut c).expect("enumerable");
        c.0
    });

    let seqlock_stress = stress::seqlock_stress();
    bench("visit_sc_sleepset/seqlock_stress", &cfg, || {
        let mut c = Count(0);
        visit_sc(&seqlock_stress, &limits, false, Reduction::SleepSet, &mut c)
            .expect("enumerable under reduction");
        c.0
    });

    bench("check_sharded_t4/seqlock_stress", &cfg, || {
        let opts = CheckOptions { threads: 4, ..CheckOptions::default() };
        check_program_with(&seqlock_stress, MemoryModel::Drfrlx, &opts)
            .expect("enumerable under reduction")
            .executions
    });

    let flags = usecases::flags();
    let execs = enumerate_sc(&flags, &limits).expect("enumerable");
    bench("analyze/flags_all_executions", &cfg, || {
        execs.iter().map(|e| analyze(e).races().len()).sum::<usize>()
    });

    for (name, p) in [
        ("work_queue", usecases::work_queue()),
        ("event_counter", usecases::event_counter()),
        ("split_counter", usecases::split_counter()),
    ] {
        bench(&format!("check_program/{name}"), &cfg, || {
            try_check_program(&p, MemoryModel::Drfrlx, &limits).expect("enumerable").is_race_free()
        });
    }

    let counter = usecases::event_counter();
    bench("explore_relaxed/event_counter", &cfg, || {
        explore_relaxed(&counter, MemoryModel::Drfrlx, &limits).expect("explorable").schedules
    });
}
