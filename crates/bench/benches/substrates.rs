//! Benchmarks for the substrate crates: NoC message timelines, cache
//! arrays, and relation algebra. Plain `harness = false` timing
//! (offline-friendly).

use drfrlx_bench::timing::{bench, TimingConfig};
use drfrlx_core::relation::Relation;
use hsim_mem::{Cache, CacheParams, LineAddr};
use hsim_noc::{Mesh, NocParams, NodeId};

fn main() {
    let cfg = TimingConfig::default();

    bench("noc/hotspot_1k_messages", &cfg, || {
        let mut m = Mesh::new(NocParams::default());
        for i in 0..1000u64 {
            m.send(i, NodeId((i % 16) as u16), NodeId(5), 4);
        }
        m.stats().total_latency
    });

    bench("cache/32k_lookups", &cfg, || {
        let mut cache: Cache<u8> = Cache::new(CacheParams::with_capacity(32 * 1024, 64, 8));
        let mut hits = 0u64;
        for i in 0..32_768u64 {
            let line = LineAddr(i % 700);
            if cache.lookup(line).is_some() {
                hits += 1;
            } else {
                cache.insert(line, 0);
            }
        }
        hits
    });

    let n = 24;
    let r = Relation::from_pairs(n, (0..n - 1).map(|i| (i, i + 1)));
    bench("relation/closure_n24", &cfg, || r.transitive_closure().len());
}
