//! Criterion benchmarks for the substrate crates: NoC message
//! timelines, cache arrays, and relation algebra.

use criterion::{criterion_group, criterion_main, Criterion};
use drfrlx_core::relation::Relation;
use hsim_mem::{Cache, CacheParams, LineAddr};
use hsim_noc::{Mesh, NocParams, NodeId};

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc/hotspot_1k_messages", |b| {
        b.iter(|| {
            let mut m = Mesh::new(NocParams::default());
            for i in 0..1000u64 {
                m.send(i, NodeId((i % 16) as u16), NodeId(5), 4);
            }
            m.stats().total_latency
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/32k_lookups", |b| {
        b.iter(|| {
            let mut cache: Cache<u8> = Cache::new(CacheParams::with_capacity(32 * 1024, 64, 8));
            let mut hits = 0u64;
            for i in 0..32_768u64 {
                let line = LineAddr(i % 700);
                if cache.lookup(line).is_some() {
                    hits += 1;
                } else {
                    cache.insert(line, 0);
                }
            }
            hits
        })
    });
}

fn bench_relation(c: &mut Criterion) {
    let n = 24;
    let r = Relation::from_pairs(n, (0..n - 1).map(|i| (i, i + 1)));
    c.bench_function("relation/closure_n24", |b| {
        b.iter(|| r.transitive_closure().len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(10);
    targets = bench_noc, bench_cache, bench_relation
}
criterion_main!(benches);
