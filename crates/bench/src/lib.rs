//! # drfrlx-bench — the unified experiment harness
//!
//! Every simulation-backed artifact of the paper's evaluation is one
//! [`experiment::Experiment`] in the [`experiments::registry`]: a
//! declarative job matrix (workload × `SystemConfig` × platform) plus
//! renderers for the human-readable table and structured JSON rows.
//! The jobs run on the parallel sweep engine (`hsim_sys::run_matrix`),
//! so regenerating a figure uses every core while staying
//! byte-identical to a serial run.
//!
//! | id | artifact | wrapper binary |
//! |----|----------|----------------|
//! | `fig1` | Figure 1: relaxed vs SC atomics, discrete GPU | `fig1_discrete` |
//! | `fig3` | Figure 3: microbenchmark time + energy | `fig3_micro` |
//! | `fig4` | Figure 4: benchmark time + energy | `fig4_bench` |
//! | `table4` | Table 4: measured benefits per model | `table4_benefits` |
//! | `section6` | §6: the paper's headline averages | `section6_summary` |
//! | `sweep_contention` | §4.4 bins/contention sweep | `sweep_contention` |
//! | `sweep_contexts` | hardware-context MLP sweep | `sweep_contexts` |
//! | `ablation_coalescing` | §6.3 MSHR atomic coalescing | `ablation_coalescing` |
//! | `ablation_acqrel` | §7 acquire/release one-sided atomics | `ablation_acqrel` |
//! | `ext_sssp` | extension: SSSP, all six configs | `ext_sssp` |
//! | `ext_pr_residual` | extension: quantum residual in PR | `ext_pr_residual` |
//! | `hotspots` | diagnostic: protocol event profile | `hotspots` |
//!
//! Run any of them as `drfrlx bench <id>` (or `bench all`), or via the
//! wrapper binary: `cargo run --release -p drfrlx-bench --bin <bin>`.
//! Both honor `--threads N` / `DRFRLX_THREADS` (default: all cores)
//! and `--out DIR` / `DRFRLX_RESULTS` (default: `results/`), print the
//! text table to stdout, and write `results/<id>.txt` plus
//! JSON-lines `results/<id>.json` for trajectory tracking.
//!
//! Artifacts with no simulation matrix keep dedicated binaries:
//! `fig2_paths`, `table1_usecases`, `table2_params`,
//! `table3_benchmarks`, `listing7_herd`.
//!
//! The `benches/` targets (`cargo bench`) measure the tooling itself —
//! SC-execution enumeration, race analysis, the simulator and the
//! sweep engine — with the offline [`timing`] harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod experiments;
pub mod json;
pub mod tables;
pub mod timing;

pub use experiment::{cli_main, run_experiment, write_artifacts, Experiment, ExperimentRun};
pub use experiments::{find, ids, registry};
pub use tables::{energy_components_table, geomean, normalized_table, Metric};
