//! # drfrlx-bench — regenerating every table and figure
//!
//! One binary per artifact of the paper's evaluation (see DESIGN.md's
//! experiment index):
//!
//! | target | artifact |
//! |--------|----------|
//! | `fig1_discrete` | Figure 1: relaxed vs SC atomics on a discrete GPU |
//! | `fig2_paths` | Figure 2: program/conflict graphs + ordering paths |
//! | `table1_usecases` | Table 1: use case ↔ category mapping |
//! | `listing7_herd` | Listing 7: litmus verdicts under both models |
//! | `table2_params` | Table 2: simulated system parameters |
//! | `table3_benchmarks` | Table 3: workloads, inputs, atomic classes |
//! | `table4_benefits` | Table 4: measured benefits per model |
//! | `fig3_micro` | Figure 3: microbenchmark time + energy, 6 configs |
//! | `fig4_bench` | Figure 4: benchmark time + energy, 6 configs |
//! | `section6_summary` | §6: the paper's headline averages |
//!
//! Run any of them with `cargo run --release -p drfrlx-bench --bin <target>`.
//! The `criterion` benches (`cargo bench`) measure the tooling itself:
//! SC-execution enumeration, race analysis, the relaxed machine, the
//! NoC and the full simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use drfrlx_core::SystemConfig;
use hsim_sys::{run_workload, RunReport, SysParams};
use drfrlx_workloads::WorkloadSpec;

/// Run a workload spec under all six configurations, validating each.
///
/// # Panics
///
/// Panics if any configuration produces a functionally wrong result —
/// a simulator bug, not a measurement.
pub fn run_six(spec: &WorkloadSpec, params: &SysParams) -> Vec<RunReport> {
    let kernel = spec.kernel();
    SystemConfig::all()
        .into_iter()
        .map(|cfg| {
            let r = run_workload(kernel.as_ref(), cfg, params);
            if let Err(e) = kernel.validate(&r.memory) {
                panic!("{} produced a wrong result under {cfg}: {e}", spec.name);
            }
            r
        })
        .collect()
}

/// Geometric mean of a sequence of ratios.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Print a normalized table: rows = workloads, columns = configs,
/// values = metric normalized to the first config (GD0).
pub fn print_normalized(
    title: &str,
    rows: &[(String, Vec<RunReport>)],
    metric: impl Fn(&RunReport) -> f64,
) {
    println!("\n{title}");
    print!("{:10}", "");
    for cfg in SystemConfig::all() {
        print!(" {:>7}", cfg.abbrev());
    }
    println!();
    for (name, reports) in rows {
        let base = metric(&reports[0]).max(1e-12);
        print!("{name:10}");
        for r in reports {
            print!(" {:>7.3}", metric(r) / base);
        }
        println!();
    }
}

/// The energy-component breakdown rows of Figures 3(b)/4(b).
pub fn print_energy_components(rows: &[(String, Vec<RunReport>)]) {
    println!("\nenergy components (normalized to GD0 total; core/scratch/L1/L2/net)");
    for (name, reports) in rows {
        let base = reports[0].energy.total().max(1e-12);
        println!("{name}:");
        for r in reports {
            let e = &r.energy;
            println!(
                "  {:>4}: {:5.2} = core {:4.2} + scratch {:4.2} + l1 {:4.2} + l2 {:4.2} + net {:4.2}",
                r.config.abbrev(),
                e.total() / base,
                e.core / base,
                e.scratch / base,
                e.l1 / base,
                e.l2 / base,
                e.network / base,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }
}
