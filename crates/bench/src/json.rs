//! A minimal JSON object writer for the structured experiment results.
//!
//! Hand-rolled (no serde) so the workspace stays dependency-free and
//! offline-buildable. Only what the result rows need: flat or nested
//! objects with string, integer and finite-float values, emitted as
//! one compact line per row (JSON-lines).

use std::fmt::Write as _;

/// Builder for one JSON object.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> JsonObj {
        JsonObj::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a float field; non-finite values (which the normalization
    /// layer never produces — see `hsim_sys::total_ratio`) are emitted
    /// as `null` rather than invalid JSON.
    pub fn f64(mut self, key: &str, value: f64) -> JsonObj {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a nested object field.
    pub fn obj(mut self, key: &str, value: JsonObj) -> JsonObj {
        self.key(key);
        self.buf.push_str(&value.finish());
        self
    }

    /// Close the object and return its compact text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value — the reader half of this module, used to
/// validate emitted artifacts (result rows, Chrome traces) without
/// pulling in a dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The text, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one complete JSON document. Strict: rejects trailing garbage,
/// trailing commas, unterminated strings and malformed escapes.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser { src: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired (the writer
                            // never emits them); map to replacement.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8:
                    // it came from a &str).
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_objects() {
        let j = JsonObj::new()
            .str("name", "BC-1")
            .u64("cycles", 42)
            .f64("norm", 0.5)
            .obj("energy", JsonObj::new().f64("core", 1.25))
            .finish();
        assert_eq!(j, r#"{"name":"BC-1","cycles":42,"norm":0.5,"energy":{"core":1.25}}"#);
    }

    #[test]
    fn escapes_strings_and_guards_floats() {
        let j = JsonObj::new().str("s", "a\"b\\c\nd").f64("bad", f64::NAN).finish();
        assert_eq!(j, r#"{"s":"a\"b\\c\nd","bad":null}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObj::new().finish(), "{}");
    }

    #[test]
    fn parses_what_the_writer_emits() {
        let written = JsonObj::new()
            .str("name", "BC-1")
            .u64("cycles", 42)
            .f64("norm", 0.5)
            .bool("ok", true)
            .obj("energy", JsonObj::new().f64("core", 1.25))
            .finish();
        let parsed = parse_json(&written).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("BC-1"));
        assert_eq!(parsed.get("cycles").unwrap().as_num(), Some(42.0));
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("energy").unwrap().get("core").unwrap().as_num(), Some(1.25));
    }

    #[test]
    fn parses_escapes_round_trip() {
        let written = JsonObj::new().str("s", "a\"b\\c\nd\te\u{1}").finish();
        let parsed = parse_json(&written).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_arrays_and_literals() {
        let v = parse_json(r#"{"a":[1,-2.5,null,false,"x"],"b":[]}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].as_num(), Some(-2.5));
        assert_eq!(a[2], Json::Null);
        assert_eq!(a[3], Json::Bool(false));
        assert_eq!(a[4].as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "{\"a\":1} extra",
            "nul",
            "{\"a\" 1}",
            "[1 2]",
            "\"bad \\q escape\"",
        ] {
            assert!(parse_json(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_json("\"\\u0041\\u00e9 raw é\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé raw é"));
    }
}
