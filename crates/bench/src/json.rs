//! A minimal JSON object writer for the structured experiment results.
//!
//! Hand-rolled (no serde) so the workspace stays dependency-free and
//! offline-buildable. Only what the result rows need: flat or nested
//! objects with string, integer and finite-float values, emitted as
//! one compact line per row (JSON-lines).

use std::fmt::Write as _;

/// Builder for one JSON object.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> JsonObj {
        JsonObj::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a float field; non-finite values (which the normalization
    /// layer never produces — see `hsim_sys::total_ratio`) are emitted
    /// as `null` rather than invalid JSON.
    pub fn f64(mut self, key: &str, value: f64) -> JsonObj {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObj {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a nested object field.
    pub fn obj(mut self, key: &str, value: JsonObj) -> JsonObj {
        self.key(key);
        self.buf.push_str(&value.finish());
        self
    }

    /// Close the object and return its compact text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_objects() {
        let j = JsonObj::new()
            .str("name", "BC-1")
            .u64("cycles", 42)
            .f64("norm", 0.5)
            .obj("energy", JsonObj::new().f64("core", 1.25))
            .finish();
        assert_eq!(j, r#"{"name":"BC-1","cycles":42,"norm":0.5,"energy":{"core":1.25}}"#);
    }

    #[test]
    fn escapes_strings_and_guards_floats() {
        let j = JsonObj::new().str("s", "a\"b\\c\nd").f64("bad", f64::NAN).finish();
        assert_eq!(j, r#"{"s":"a\"b\\c\nd","bad":null}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObj::new().finish(), "{}");
    }
}
