//! The experiment harness: a declarative [`Experiment`] is a job list
//! plus renderers; [`run_experiment`] fans the jobs out on the sweep
//! engine and produces both the human-readable text artifact and
//! structured JSON-lines rows.
//!
//! Every registered experiment (see [`crate::experiments::registry`])
//! is runnable three ways, all equivalent:
//!
//! * `drfrlx bench <id>` (the root CLI),
//! * `cargo run --release -p drfrlx-bench --bin <id>_...` (the thin
//!   per-figure wrappers), and
//! * [`cli_main`] from tests or tools.
//!
//! Artifacts land in `results/<id>.txt` and `results/<id>.json`
//! (override the directory with `--out` or `DRFRLX_RESULTS`); worker
//! count comes from `--threads` or `DRFRLX_THREADS`.

use crate::json::JsonObj;
use hsim_sys::{default_threads, run_matrix, RunReport, SimJob};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One paper artifact: a declarative job matrix plus renderers for the
/// text table and the JSON rows.
pub trait Experiment: Sync {
    /// Stable identifier (`fig3`, `table4`, `sweep_contention`, ...);
    /// also the `results/` file stem.
    fn id(&self) -> &'static str;

    /// One-line human description.
    fn title(&self) -> &'static str;

    /// The simulation jobs, in deterministic order. `render` and
    /// `json_rows` receive reports in exactly this order.
    fn jobs(&self) -> Vec<SimJob>;

    /// Render the human-readable artifact (the `results/<id>.txt`
    /// body, also printed to stdout).
    fn render(&self, jobs: &[SimJob], reports: &[RunReport]) -> String;

    /// Structured rows, one JSON object per line. The default emits
    /// one row per job with raw metrics plus time/energy normalized to
    /// the first job of the same workload (its row baseline).
    fn json_rows(&self, jobs: &[SimJob], reports: &[RunReport]) -> Vec<String> {
        jobs.iter()
            .zip(reports)
            .map(|(job, report)| {
                let base = jobs
                    .iter()
                    .position(|j| j.workload == job.workload)
                    .map(|i| &reports[i])
                    .unwrap_or(report);
                report_row(self.id(), job, report, base).finish()
            })
            .collect()
    }
}

/// The generic JSON row for one (job, report) cell: identity, raw
/// cycles/energy/protocol counters, and normalized time/energy vs
/// `base` (the row's first configuration). Experiments with extra
/// per-row fields can extend the returned builder.
pub fn report_row(experiment: &str, job: &SimJob, r: &RunReport, base: &RunReport) -> JsonObj {
    let e = &r.energy;
    let c = &r.counters;
    let p = &r.proto;
    JsonObj::new()
        .str("experiment", experiment)
        .str("workload", &job.workload)
        .str("config", r.config.abbrev())
        .str("platform", &r.platform)
        .u64("cycles", r.cycles)
        .f64("normalized_time", r.normalized_time(base))
        .f64("energy_total", e.total())
        .f64("normalized_energy", r.normalized_energy(base))
        .obj(
            "energy",
            JsonObj::new()
                .f64("core", e.core)
                .f64("scratch", e.scratch)
                .f64("l1", e.l1)
                .f64("l2", e.l2)
                .f64("network", e.network),
        )
        .obj(
            "counters",
            JsonObj::new()
                .u64("core_ops", c.core_ops)
                .u64("scratch_accesses", c.scratch_accesses)
                .u64("l1_accesses", c.l1_accesses)
                .u64("l1_tag_ops", c.l1_tag_ops)
                .u64("l2_accesses", c.l2_accesses)
                .u64("dram_accesses", c.dram_accesses)
                .u64("noc_flit_hops", c.noc_flit_hops),
        )
        .obj(
            "proto",
            JsonObj::new()
                .u64("l1_hits", p.l1_hits)
                .u64("l1_misses", p.l1_misses)
                .u64("invalidation_events", p.invalidation_events)
                .u64("sb_flushes", p.sb_flushes)
                .u64("atomics_at_l1", p.atomics_at_l1)
                .u64("atomics_at_l2", p.atomics_at_l2)
                .u64("mshr_coalesced", p.mshr_coalesced)
                .u64("remote_l1_transfers", p.remote_l1_transfers),
        )
        .u64("atomics", r.atomics)
        .u64("atomics_overlapped", r.atomics_overlapped)
}

/// Group consecutive jobs with the same workload id into
/// `(workload, reports)` rows — the shape the table renderers take.
pub fn rows_by_workload(jobs: &[SimJob], reports: &[RunReport]) -> Vec<(String, Vec<RunReport>)> {
    let mut rows: Vec<(String, Vec<RunReport>)> = Vec::new();
    for (job, report) in jobs.iter().zip(reports) {
        match rows.last_mut() {
            Some((name, row)) if *name == job.workload => row.push(report.clone()),
            _ => rows.push((job.workload.clone(), vec![report.clone()])),
        }
    }
    rows
}

/// The finished outputs of one experiment run.
pub struct ExperimentRun {
    /// Reports in job order.
    pub reports: Vec<RunReport>,
    /// The rendered text artifact.
    pub text: String,
    /// JSON-lines rows.
    pub json: Vec<String>,
}

/// Run an experiment's matrix on `threads` workers and render both
/// artifacts.
pub fn run_experiment(e: &dyn Experiment, threads: usize) -> ExperimentRun {
    let jobs = e.jobs();
    let reports = run_matrix(&jobs, threads);
    let text = e.render(&jobs, &reports);
    let json = e.json_rows(&jobs, &reports);
    ExperimentRun { reports, text, json }
}

/// Write `results/<id>.txt` and `results/<id>.json` under `outdir`
/// (created if missing); returns both paths.
///
/// # Errors
///
/// Any I/O failure creating the directory or writing the files.
pub fn write_artifacts(
    outdir: &Path,
    id: &str,
    run: &ExperimentRun,
) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(outdir)?;
    let txt = outdir.join(format!("{id}.txt"));
    let mut text = run.text.clone();
    if !text.ends_with('\n') {
        text.push('\n');
    }
    std::fs::write(&txt, text)?;
    let json = outdir.join(format!("{id}.json"));
    let mut f = std::fs::File::create(&json)?;
    for row in &run.json {
        writeln!(f, "{row}")?;
    }
    Ok((txt, json))
}

/// Directory for result artifacts: `--out` flag value, else
/// `DRFRLX_RESULTS`, else `results/`.
fn outdir_from(args: &[String]) -> PathBuf {
    flag_value(args, "--out")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("DRFRLX_RESULTS").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("results"))
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Worker count: `--threads` flag, else [`default_threads`].
fn threads_from(args: &[String]) -> usize {
    flag_value(args, "--threads")
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(default_threads)
}

/// Entry point shared by the per-figure binaries and `drfrlx bench`:
/// run experiment `id` honoring `--threads N` / `--out DIR` (and the
/// `DRFRLX_THREADS` / `DRFRLX_RESULTS` environment variables), print
/// the text artifact, and write both result files.
///
/// # Panics
///
/// Panics if `id` is not registered or a validated job fails its
/// functional check; artifact write failures are reported to stderr
/// without failing the run (the measurement already printed).
pub fn cli_main(id: &str) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let e = crate::experiments::find(id)
        .unwrap_or_else(|| panic!("experiment `{id}` is not registered"));
    let threads = threads_from(&args);
    let run = run_experiment(e.as_ref(), threads);
    print!("{}", run.text);
    match write_artifacts(&outdir_from(&args), id, &run) {
        Ok((txt, json)) => {
            eprintln!("\n[wrote {} and {}; threads={threads}]", txt.display(), json.display())
        }
        Err(err) => eprintln!("\n[could not write result artifacts: {err}]"),
    }
}
