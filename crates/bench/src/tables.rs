//! Shared table rendering for every experiment: normalized
//! time/energy tables, the Figure 3(b)/4(b) energy-component rows, and
//! the geometric mean — the formatting the per-figure binaries used to
//! each re-implement.
//!
//! All normalization goes through [`RunReport::normalized_time`] /
//! [`RunReport::normalized_energy`], which are total (a degenerate
//! baseline never produces `NaN`/`inf` — see `hsim_sys::total_ratio`).

use hsim_sys::{total_ratio, RunReport};
use std::fmt::Write as _;

/// Which normalized metric a table shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Execution time in cycles.
    Time,
    /// Total energy.
    Energy,
}

impl Metric {
    /// `report` normalized to `base` under this metric (total).
    pub fn normalized(self, report: &RunReport, base: &RunReport) -> f64 {
        match self {
            Metric::Time => report.normalized_time(base),
            Metric::Energy => report.normalized_energy(base),
        }
    }
}

/// Geometric mean of a sequence of ratios. Total: non-finite or
/// non-positive entries (which the normalization layer never produces)
/// are skipped rather than poisoning the mean; an empty sequence is 1.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        if x.is_finite() && x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// A normalized table: rows = workloads, columns = the row's configs,
/// values = `metric` normalized to the row's first report.
pub fn normalized_table(title: &str, rows: &[(String, Vec<RunReport>)], metric: Metric) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n{title}");
    let _ = write!(out, "{:10}", "");
    if let Some((_, reports)) = rows.first() {
        for r in reports {
            let _ = write!(out, " {:>7}", r.config.abbrev());
        }
    }
    let _ = writeln!(out);
    for (name, reports) in rows {
        let _ = write!(out, "{name:10}");
        if let Some(base) = reports.first() {
            for r in reports {
                let _ = write!(out, " {:>7.3}", metric.normalized(r, base));
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// The energy-component breakdown rows of Figures 3(b)/4(b),
/// normalized to each row's first (GD0) total.
pub fn energy_components_table(rows: &[(String, Vec<RunReport>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\nenergy components (normalized to GD0 total; core/scratch/L1/L2/net)");
    for (name, reports) in rows {
        let Some(base) = reports.first() else { continue };
        let base_total = base.energy.total();
        let _ = writeln!(out, "{name}:");
        for r in reports {
            let e = &r.energy;
            let _ = writeln!(
                out,
                "  {:>4}: {:5.2} = core {:4.2} + scratch {:4.2} + l1 {:4.2} + l2 {:4.2} + net {:4.2}",
                r.config.abbrev(),
                r.normalized_energy(base),
                total_ratio(e.core, base_total),
                total_ratio(e.scratch, base_total),
                total_ratio(e.l1, base_total),
                total_ratio(e.l2, base_total),
                total_ratio(e.network, base_total),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn geomean_is_total() {
        assert!((geomean([2.0, 8.0, f64::NAN, 0.0, -3.0, f64::INFINITY]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean([f64::NAN]), 1.0);
    }
}
