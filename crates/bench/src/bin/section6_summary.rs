//! §6 headline averages: DRF1/DRFrlx vs DRF0, and DeNovo vs GPU
//! coherence, across all workloads (the paper's "on average" numbers).

use drfrlx_bench::{geomean, run_six};
use drfrlx_workloads::all_workloads;
use hsim_sys::SysParams;

fn main() {
    let params = SysParams::integrated();
    let rows: Vec<_> = all_workloads()
        .iter()
        .map(|s| (s.name.to_string(), run_six(s, &params)))
        .collect();

    // Index: 0 GD0, 1 GD1, 2 GDR, 3 DD0, 4 DD1, 5 DDR.
    let ratio_time = |num: usize, den: usize| {
        geomean(rows.iter().map(|(_, r)| r[num].cycles as f64 / r[den].cycles as f64))
    };
    let ratio_energy = |num: usize, den: usize| {
        geomean(rows.iter().map(|(_, r)| r[num].energy.total() / r[den].energy.total()))
    };
    let pct = |x: f64| (1.0 - x) * 100.0;

    println!("Section 6 summary (geometric means over all workloads)");
    println!("=======================================================");
    println!("model effect (GPU coherence):");
    println!("  DRF1   vs DRF0: exec -{:.0}%  energy -{:.0}%", pct(ratio_time(1, 0)), pct(ratio_energy(1, 0)));
    println!("  DRFrlx vs DRF1: exec -{:.0}%  energy -{:.0}%", pct(ratio_time(2, 1)), pct(ratio_energy(2, 1)));
    println!("model effect (DeNovo):");
    println!("  DRF1   vs DRF0: exec -{:.0}%  energy -{:.0}%", pct(ratio_time(4, 3)), pct(ratio_energy(4, 3)));
    println!("  DRFrlx vs DRF1: exec -{:.0}%  energy -{:.0}%", pct(ratio_time(5, 4)), pct(ratio_energy(5, 4)));
    println!("protocol effect (DeNovo vs GPU), paper: exec -14/-14/-12%, energy -16/-18/-18%:");
    println!("  under DRF0  : exec -{:.0}%  energy -{:.0}%", pct(ratio_time(3, 0)), pct(ratio_energy(3, 0)));
    println!("  under DRF1  : exec -{:.0}%  energy -{:.0}%", pct(ratio_time(4, 1)), pct(ratio_energy(4, 1)));
    println!("  under DRFrlx: exec -{:.0}%  energy -{:.0}%", pct(ratio_time(5, 2)), pct(ratio_energy(5, 2)));

    println!("\nper-workload execution time, normalized to GD0:");
    println!("{:8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}", "bench", "GD0", "GD1", "GDR", "DD0", "DD1", "DDR");
    for (name, r) in &rows {
        let base = r[0].cycles as f64;
        print!("{name:8}");
        for rep in r {
            print!(" {:>7.3}", rep.cycles as f64 / base);
        }
        println!();
    }
}
