//! §6 summary wrapper: `drfrlx bench section6`.

fn main() {
    drfrlx_bench::cli_main("section6");
}
