//! Wall-clock benchmark for the streaming axiomatic checker, in the
//! same `--perf` JSON dialect as `drfrlx bench`:
//!
//! * `checker_suite_t1` / `checker_suite_t4` — the full litmus corpus
//!   (registry + stress, each test under its registry-declared
//!   reduction) checked under all three models at 1 and 4 worker
//!   threads. The adaptive-sharding probe makes these two rows track
//!   each other: programs whose tree fits the probe budget run
//!   serially at any thread count.
//! * `checker_stress_reference` / `checker_stress_streaming` — the
//!   stress programs both enumerators can finish (`seqlock_stress`,
//!   `event_counter_stress`) under DRFrlx: the retained materializing
//!   reference with a raised execution budget versus the streaming
//!   pipeline, now with duplicate-state memoization on top of sleep
//!   sets. The committed `BENCH_PR7.json` documents the speedup over
//!   PR 6's sleep-set-only streaming numbers.
//!
//! Usage: `checker_bench [--perf FILE [--perf-baseline FILE]]`

use drfrlx_bench::timing::PerfReport;
use drfrlx_core::checker::{check_program_reference, check_program_with, CheckOptions};
use drfrlx_core::exec::{EnumLimits, Reduction};
use drfrlx_core::MemoryModel;
use drfrlx_litmus::suite::{all_tests, stress_tests};
use std::time::Instant;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut perf = PerfReport::new("checker_bench");

    // Full corpus, all models, at 1 vs 4 workers. The verdicts are
    // identical by construction; only the wall-clock moves.
    for threads in [1usize, 4] {
        let start = Instant::now();
        let mut explored = 0usize;
        for t in all_tests().iter().chain(stress_tests().iter()) {
            let p = (t.build)();
            for model in MemoryModel::ALL {
                let opts =
                    CheckOptions { threads, reduction: t.reduction, ..CheckOptions::default() };
                let r = check_program_with(&p, model, &opts)
                    .unwrap_or_else(|e| panic!("{}: {e}", t.name));
                explored += r.executions;
            }
        }
        let seconds = start.elapsed().as_secs_f64();
        perf.record(&format!("checker_suite_t{threads}"), seconds);
        println!("checker_suite_t{threads}: {seconds:.3}s ({explored} executions analyzed)");
    }

    // Reference vs streaming on the stress programs the materializing
    // enumerator can still finish (iriw_stress, at 4.2M interleavings,
    // cannot be materialized in reasonable memory — that is the point
    // of the streaming pipeline).
    let stress: Vec<_> = stress_tests()
        .into_iter()
        .filter(|t| t.name == "seqlock_stress" || t.name == "event_counter_stress")
        .collect();
    let reference_limits = EnumLimits { max_executions: 1_000_000, ..EnumLimits::default() };

    // Streaming first: the materializing reference retains hundreds of
    // thousands of executions and leaves the allocator's free lists in
    // a fragmented state that would otherwise tax the row measured
    // after it.
    let start = Instant::now();
    for t in &stress {
        let p = (t.build)();
        let opts = CheckOptions {
            threads: 4,
            reduction: Reduction::SleepSetMemo,
            ..CheckOptions::default()
        };
        let r = check_program_with(&p, MemoryModel::Drfrlx, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", t.name));
        assert!(r.is_race_free(), "{}: stress corpus is race-free", t.name);
    }
    let stream_seconds = start.elapsed().as_secs_f64();
    perf.record("checker_stress_streaming", stream_seconds);
    println!("checker_stress_streaming: {stream_seconds:.3}s");

    let start = Instant::now();
    for t in &stress {
        let p = (t.build)();
        let r = check_program_reference(&p, MemoryModel::Drfrlx, &reference_limits)
            .unwrap_or_else(|e| panic!("{}: {e}", t.name));
        assert!(r.is_race_free(), "{}: stress corpus is race-free", t.name);
    }
    let ref_seconds = start.elapsed().as_secs_f64();
    perf.record("checker_stress_reference", ref_seconds);
    println!("checker_stress_reference: {ref_seconds:.3}s");
    if stream_seconds > 0.0 {
        println!("stress speedup (streaming vs reference): {:.1}x", ref_seconds / stream_seconds);
    }

    // Conformance corpus: Table-1 use cases compiled to simulator
    // kernels and checked against the axiomatic oracle across the full
    // configuration × schedule matrix. An after-only row — absent from
    // earlier baselines, so `to_json_vs` reports it with a null
    // speedup and keeps it out of aggregate_speedup.
    let start = Instant::now();
    let opts = drfrlx_conform::ConformOptions { threads: 4, ..Default::default() };
    let reports =
        drfrlx_conform::run_corpus(&opts).expect("corpus programs enumerate within limits");
    assert!(reports.iter().all(|r| r.sound()), "conformance violation in the Table-1 corpus");
    let seconds = start.elapsed().as_secs_f64();
    perf.record("conform_corpus", seconds);
    println!("conform_corpus: {seconds:.3}s ({} tests, all sound)", reports.len());

    if let Some(path) = flag_value(&args, "--perf") {
        let json = match flag_value(&args, "--perf-baseline") {
            Some(base) => {
                let text =
                    std::fs::read_to_string(base).unwrap_or_else(|e| panic!("read {base}: {e}"));
                let before = PerfReport::parse(&text)
                    .unwrap_or_else(|| panic!("{base}: not a --perf JSON file"));
                perf.to_json_vs(&before)
            }
            None => perf.to_json(),
        };
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
}
