//! Ablation: DeNovo's L1 MSHR coalescing of same-line atomic requests
//! (§6.3: "allows DeNovo with DRFrlx to quickly service many overlapped
//! atomic requests ... GPU coherence cannot coalesce").

use drfrlx_core::SystemConfig;
use drfrlx_workloads::micro::{HistGlobal, SplitCounter};
use hsim_gpu::Kernel;
use hsim_sys::{run_workload, SysParams};

fn main() {
    let on = SysParams::integrated();
    let mut off = SysParams::integrated();
    off.memsys.atomic_coalescing = false;
    let ddr = SystemConfig::from_abbrev("DDR").unwrap();

    println!("Ablation: DeNovo MSHR atomic coalescing (DDR configuration)");
    println!("=============================================================");
    println!("{:10} {:>12} {:>12} {:>9} {:>11}", "bench", "with", "without", "benefit", "coalesced");
    let hg = HistGlobal::default();
    let sc = SplitCounter::default();
    let benches: [(&str, &dyn Kernel); 2] = [("HG", &hg), ("SC", &sc)];
    for (name, k) in benches {
        let with = run_workload(k, ddr, &on);
        let without = run_workload(k, ddr, &off);
        k.validate(&with.memory).expect("run valid");
        k.validate(&without.memory).expect("run valid");
        println!(
            "{:10} {:>12} {:>12} {:>8.2}x {:>11}",
            name,
            with.cycles,
            without.cycles,
            without.cycles as f64 / with.cycles as f64,
            with.proto.mshr_coalesced,
        );
    }
}
