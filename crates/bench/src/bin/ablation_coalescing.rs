//! §6.3 coalescing ablation wrapper: `drfrlx bench ablation_coalescing`.

fn main() {
    drfrlx_bench::cli_main("ablation_coalescing");
}
