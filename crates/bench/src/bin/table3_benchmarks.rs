//! Table 3: benchmarks, input sizes, and relaxed atomics used.

use drfrlx_workloads::all_workloads;

fn main() {
    println!("Table 3: benchmarks, inputs, and relaxed atomic classes");
    println!("========================================================");
    println!("{:8} {:6} {:22} {:34} atomic classes", "name", "kind", "paper input", "scaled input");
    for s in all_workloads() {
        let classes: Vec<String> = s.classes.iter().map(|c| format!("{c:?}")).collect();
        println!(
            "{:8} {:6} {:22} {:34} {}",
            s.name,
            if s.micro { "micro" } else { "bench" },
            s.paper_input,
            s.scaled_input,
            classes.join(", ")
        );
    }
}
