//! Protocol-event diagnostic wrapper: `drfrlx bench hotspots`.

fn main() {
    drfrlx_bench::cli_main("hotspots");
}
