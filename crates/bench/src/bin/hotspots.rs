//! Diagnostic: where do the cycles go? Per-workload protocol event
//! profile under GD0 vs DDR — the mechanism view behind Figures 3/4.

use drfrlx_core::SystemConfig;
use drfrlx_workloads::all_workloads;
use hsim_sys::{run_workload, SysParams};

fn main() {
    let params = SysParams::integrated();
    println!("Protocol event profile (GD0 → DDR)");
    println!("===================================================================================");
    println!(
        "{:8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "bench", "GD0 cyc", "DDR cyc", "inv GD0", "inv DDR", "l2at GD0", "l1at DDR", "coal DDR", "rmt DDR"
    );
    for spec in all_workloads() {
        let k = spec.kernel();
        let gd0 = run_workload(k.as_ref(), SystemConfig::from_abbrev("GD0").unwrap(), &params);
        let ddr = run_workload(k.as_ref(), SystemConfig::from_abbrev("DDR").unwrap(), &params);
        k.validate(&gd0.memory).expect("valid");
        k.validate(&ddr.memory).expect("valid");
        println!(
            "{:8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
            spec.name,
            gd0.cycles,
            ddr.cycles,
            gd0.proto.invalidation_events,
            ddr.proto.invalidation_events,
            gd0.proto.atomics_at_l2,
            ddr.proto.atomics_at_l1,
            ddr.proto.mshr_coalesced,
            ddr.proto.remote_l1_transfers,
        );
    }
}
