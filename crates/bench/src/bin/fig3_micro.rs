//! Figure 3 wrapper: `drfrlx bench fig3`.

fn main() {
    drfrlx_bench::cli_main("fig3");
}
