//! Figure 3: microbenchmark execution time (a) and energy (b) for all
//! six configurations, normalized to GD0.

use drfrlx_bench::{print_energy_components, print_normalized, run_six};
use drfrlx_workloads::microbenchmarks;
use hsim_sys::SysParams;

fn main() {
    let params = SysParams::integrated();
    let rows: Vec<_> = microbenchmarks()
        .iter()
        .map(|s| (s.name.to_string(), run_six(s, &params)))
        .collect();
    print_normalized("Figure 3(a): microbenchmark execution time (normalized to GD0)", &rows, |r| {
        r.cycles as f64
    });
    print_normalized("Figure 3(b): microbenchmark energy (normalized to GD0)", &rows, |r| {
        r.energy.total()
    });
    print_energy_components(&rows);
}
