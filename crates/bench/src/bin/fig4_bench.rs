//! Figure 4: benchmark execution time (a) and energy (b) for all six
//! configurations, normalized to GD0.

use drfrlx_bench::{print_energy_components, print_normalized, run_six};
use drfrlx_workloads::benchmarks;
use hsim_sys::SysParams;

fn main() {
    let params = SysParams::integrated();
    let rows: Vec<_> = benchmarks()
        .iter()
        .map(|s| (s.name.to_string(), run_six(s, &params)))
        .collect();
    print_normalized("Figure 4(a): benchmark execution time (normalized to GD0)", &rows, |r| {
        r.cycles as f64
    });
    print_normalized("Figure 4(b): benchmark energy (normalized to GD0)", &rows, |r| {
        r.energy.total()
    });
    print_energy_components(&rows);
}
