//! Figure 4 wrapper: `drfrlx bench fig4`.

fn main() {
    drfrlx_bench::cli_main("fig4");
}
