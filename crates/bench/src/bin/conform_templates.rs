//! Template-corpus conformance wrapper: `drfrlx bench conform_templates`.

fn main() {
    drfrlx_bench::cli_main("conform_templates");
}
