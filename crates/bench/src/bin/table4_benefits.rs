//! Table 4: the qualitative benefits of DRF0/DRF1/DRFrlx, demonstrated
//! with measured event counts from one atomic-heavy run (HG).

use drfrlx_core::SystemConfig;
use drfrlx_workloads::microbenchmarks;
use hsim_sys::{run_workload, SysParams};

fn main() {
    let params = SysParams::integrated();
    let spec = microbenchmarks().into_iter().find(|s| s.name == "HG").expect("HG registered");
    let k = spec.kernel();
    println!("Table 4: benefits of DRF0 / DRF1 / DRFrlx (measured on HG, GPU coherence)");
    println!("==========================================================================");
    println!(
        "{:6} {:>14} {:>14} {:>18} {:>10}",
        "model", "invalidations", "SB flushes", "overlapped atomics", "cycles"
    );
    for abbrev in ["GD0", "GD1", "GDR"] {
        let r = run_workload(k.as_ref(), SystemConfig::from_abbrev(abbrev).unwrap(), &params);
        println!(
            "{:6} {:>14} {:>14} {:>18} {:>10}",
            abbrev, r.proto.invalidation_events, r.proto.sb_flushes, r.atomics_overlapped, r.cycles
        );
    }
    println!("\npaper's Table 4:");
    println!("  avoid cache invalidations at atomic loads :  DRF0 x | DRF1 ok | DRFrlx ok");
    println!("  avoid store buffer flushes at atomic stores: DRF0 x | DRF1 ok | DRFrlx ok");
    println!("  overlap atomics in the memory system       : DRF0 x | DRF1 x  | DRFrlx ok");
}
