//! Table 4 wrapper: `drfrlx bench table4`.

fn main() {
    drfrlx_bench::cli_main("table4");
}
