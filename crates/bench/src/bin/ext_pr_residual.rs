//! Extension study: adaptive PageRank with a shared convergence
//! residual — the Split Counter use case (§3.4) embedded in a
//! benchmark. Every rank update pushes |Δrank| into one global
//! accumulator; thread 0 peeks at the (approximate) total each
//! iteration. With paired atomics the accumulator is a serialization
//! point; with quantum atomics the adds overlap and the peek tolerates
//! partial sums.

use drfrlx_core::{OpClass, SystemConfig};
use drfrlx_workloads::{graphs, pagerank::PageRank};
use hsim_gpu::Kernel;
use hsim_sys::{run_workload, SysParams};

fn main() {
    let params = SysParams::integrated();
    let graph = graphs::contact_like("ext", 768, 3, 31);
    println!("Extension: PageRank + convergence residual (graph: {} verts)", graph.verts());
    println!("==============================================================");
    println!("{:24} {:>10} {:>10} {:>10}", "variant", "GD0", "GDR", "DDR");
    let mut rows: Vec<(String, PageRank)> = Vec::new();
    let base = PageRank::new(graph.clone(), 2, 15, 16);
    rows.push(("no residual".into(), base.clone()));
    let mut paired = base.clone();
    paired.track_residual = true;
    paired.residual_class = OpClass::Paired;
    rows.push(("residual, paired".into(), paired));
    let mut quantum = base.clone();
    quantum.track_residual = true;
    quantum.residual_class = OpClass::Quantum;
    rows.push(("residual, quantum".into(), quantum));

    for (label, pr) in &rows {
        print!("{label:24}");
        for cfg in ["GD0", "GDR", "DDR"] {
            let r = run_workload(pr, SystemConfig::from_abbrev(cfg).unwrap(), &params);
            pr.validate(&r.memory).expect("ranks + residual exact");
            print!(" {:>10}", r.cycles);
        }
        println!();
    }
    println!("\n(expected: the paired residual accumulator costs every config;");
    println!(" the quantum one is nearly free under DRFrlx)");
}
