//! PageRank-residual extension wrapper: `drfrlx bench ext_pr_residual`.

fn main() {
    drfrlx_bench::cli_main("ext_pr_residual");
}
