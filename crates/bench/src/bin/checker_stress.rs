//! The 4-thread stress corpus under the streaming checker: per-model
//! verdicts with explored/pruned execution counts. Deterministic at any
//! worker count (the shard merge is ordered), so the output is a golden
//! artifact — `results/checker_stress.txt` — and any checker regression
//! that changes a verdict or the reduction itself fails tier-1 tests.
//! Each test runs under its registry-declared reduction: sleep sets
//! for the PR-6 corpus, sleep sets + duplicate-state memoization for
//! the compound programs that are intractable without it.

use drfrlx_core::checker::{check_program_with, CheckOptions};
use drfrlx_core::MemoryModel;
use drfrlx_litmus::suite::stress_tests;

fn main() {
    let threads = std::env::var("DRFRLX_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(4);
    println!("Stress corpus: streaming checker with sleep-set reduction");
    println!("=========================================================");
    println!("{:24} {:>7} {:10} {:>9} {:>9}", "litmus", "model", "verdict", "explored", "pruned");
    for t in stress_tests() {
        let p = (t.build)();
        for model in MemoryModel::ALL {
            let opts = CheckOptions { threads, reduction: t.reduction, ..CheckOptions::default() };
            let r = check_program_with(&p, model, &opts).expect("enumerable under reduction");
            let verdict = if r.is_race_free() { "race-free" } else { "RACY" };
            println!(
                "{:24} {:>7} {:10} {:>9} {:>9}",
                t.name,
                format!("{model}"),
                verdict,
                r.executions,
                r.pruned
            );
        }
    }
}
