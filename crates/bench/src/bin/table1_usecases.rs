//! Table 1: GPU relaxed atomic use cases, with checker verdicts.

use drfrlx_core::{check_program, MemoryModel};
use drfrlx_litmus::suite::{all_tests, Category};

fn main() {
    println!("Table 1: GPU relaxed atomic use cases");
    println!("======================================");
    println!("{:24} {:40} DRFrlx verdict", "use case", "description");
    for t in all_tests().iter().filter(|t| t.category == Category::UseCase) {
        let report = check_program(&(t.build)(), MemoryModel::Drfrlx);
        println!(
            "{:24} {:40} {}",
            t.name,
            t.description,
            if report.is_race_free() { "race-free (SC-centric)" } else { "RACY" }
        );
    }
}
