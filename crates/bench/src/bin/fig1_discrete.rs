//! Figure 1: speedup of relaxed atomics over SC atomics on a
//! discrete-GPU-like platform.
//!
//! The paper measured nine atomic-heavy applications on a GTX 680;
//! we run our nine distinct workloads on the discrete configuration,
//! comparing the annotated (relaxed) version under DRFrlx against the
//! all-SC-atomics version under DRF0 — both on GPU coherence, as on
//! real hardware.

use drfrlx_core::{MemoryModel, Protocol, SystemConfig};
use drfrlx_workloads::all_workloads;
use hsim_sys::{run_workload, SysParams};

fn main() {
    let params = SysParams::discrete_gpu();
    let wanted = ["H", "HG", "Flags", "SC", "RC", "SEQ", "UTS", "BC-4", "PR-2"];
    println!("Figure 1: relaxed vs SC atomics on a discrete GPU");
    println!("==================================================");
    println!("{:8} {:>12} {:>12} {:>9}", "app", "SC cycles", "rlx cycles", "speedup");
    for spec in all_workloads() {
        if !wanted.contains(&spec.name) {
            continue;
        }
        let k = spec.kernel();
        let sc = run_workload(
            k.as_ref(),
            SystemConfig::new(Protocol::Gpu, MemoryModel::Drf0),
            &params,
        );
        let rlx = run_workload(
            k.as_ref(),
            SystemConfig::new(Protocol::Gpu, MemoryModel::Drfrlx),
            &params,
        );
        k.validate(&sc.memory).expect("SC run valid");
        k.validate(&rlx.memory).expect("relaxed run valid");
        println!(
            "{:8} {:>12} {:>12} {:>8.2}x",
            spec.name,
            sc.cycles,
            rlx.cycles,
            sc.cycles as f64 / rlx.cycles as f64
        );
    }
    println!("\n(shape target: ~1x for atomic-light apps, large for PR/BC-style");
    println!(" atomic storms — the paper saw up to 99x for PageRank)");
}
