//! Figure 1 wrapper: `drfrlx bench fig1`.

fn main() {
    drfrlx_bench::cli_main("fig1");
}
