//! Table 2: simulated heterogeneous system parameters.

fn main() {
    println!("Table 2: simulated heterogeneous system parameters");
    println!("===================================================");
    for (k, v) in hsim_sys::SysParams::integrated().table2_rows() {
        println!("{k:24} {v}");
    }
    println!("\n(discrete-GPU variant for Figure 1)");
    for (k, v) in hsim_sys::SysParams::discrete_gpu().table2_rows() {
        println!("{k:24} {v}");
    }
}
