//! Extension benchmark: SSSP (Pannotia's other relaxed-atomic graph
//! workload) across all six configurations — commutative fetch-min
//! relaxations plus non-ordering distance reads.

use drfrlx_bench::{print_normalized, run_six};
use drfrlx_workloads::registry::extensions;
use hsim_sys::SysParams;

fn main() {
    let params = SysParams::integrated();
    let rows: Vec<_> = extensions()
        .iter()
        .filter(|s| s.name.starts_with("SSSP"))
        .map(|s| (s.name.to_string(), run_six(s, &params)))
        .collect();
    print_normalized("Extension: SSSP execution time (normalized to GD0)", &rows, |r| {
        r.cycles as f64
    });
    print_normalized("Extension: SSSP energy (normalized to GD0)", &rows, |r| {
        r.energy.total()
    });
}
