//! SSSP extension wrapper: `drfrlx bench ext_sssp`.

fn main() {
    drfrlx_bench::cli_main("ext_sssp");
}
