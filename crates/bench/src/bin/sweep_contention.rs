//! §4.4 contention sweep wrapper: `drfrlx bench sweep_contention`.

fn main() {
    drfrlx_bench::cli_main("sweep_contention");
}
