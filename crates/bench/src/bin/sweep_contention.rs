//! The paper's §4.4 aside: "we examined different levels of contention
//! and number of bins for the histogram applications. More bins and
//! reduced contention improve performance for all configurations, but
//! did not change the observed trends."

use drfrlx_core::SystemConfig;
use drfrlx_workloads::micro::{HistGlobal, HistParams};
use hsim_gpu::Kernel;
use hsim_sys::{run_workload, SysParams};

fn main() {
    let params = SysParams::integrated();
    println!("Contention sweep: HG with varying bin counts");
    println!("=============================================");
    println!("{:>6} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}", "bins", "GD0 cyc", "GD1", "GDR", "DD0", "DD1", "DDR");
    for bins in [32usize, 128, 256, 1024] {
        let k = HistGlobal { params: HistParams { bins, ..HistParams::default() }, ..Default::default() };
        let reports: Vec<_> = SystemConfig::all()
            .into_iter()
            .map(|cfg| run_workload(&k, cfg, &params))
            .collect();
        for r in &reports {
            k.validate(&r.memory).expect("histogram exact");
        }
        let base = reports[0].cycles as f64;
        print!("{:>6} {:>10}", bins, reports[0].cycles);
        for r in &reports[1..] {
            print!(" {:>7.3}", r.cycles as f64 / base);
        }
        println!();
    }
    println!("\n(expected: absolute cycles fall as bins grow; the GD0 ≥ GD1 ≥ GDR");
    println!(" and DD0 ≥ DD1 ≥ DDR orderings hold at every contention level)");
}
