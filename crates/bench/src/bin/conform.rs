//! Conformance corpus report: the Table-1 use cases compiled to
//! simulator kernels, run across the nine configurations × 128
//! schedules, and checked against the axiomatic oracle
//! (`results/conform.txt`).

use drfrlx_conform::{render_corpus, run_corpus, ConformOptions};
use hsim_sys::default_threads;
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = ConformOptions { threads: default_threads(), ..ConformOptions::default() };
    let reports = run_corpus(&opts).expect("corpus programs enumerate within default limits");
    print!("{}", render_corpus(&reports, &opts));
    if reports.iter().all(|r| r.sound()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
