//! Listing 7: the programmer-centric model's verdict on every litmus
//! test, plus the system-centric model's SC comparison — the paper's
//! §3.8 validation as one report.

use drfrlx_core::checker::try_check_program;
use drfrlx_core::exec::EnumLimits;
use drfrlx_core::syscentric::compare_with_sc;
use drfrlx_core::MemoryModel;
use drfrlx_litmus::suite::all_tests;

fn main() {
    println!("Listing 7: programmer-centric + system-centric verdicts");
    println!("========================================================");
    println!(
        "{:28} {:>5} {:>5} {:>7} {:24} relaxed machine",
        "litmus", "DRF0", "DRF1", "DRFrlx", "DRFrlx races"
    );
    let limits = EnumLimits::default();
    for t in all_tests() {
        let p = (t.build)();
        let verdicts: Vec<String> = MemoryModel::ALL
            .iter()
            .map(|m| {
                let r = try_check_program(&p, *m, &limits).expect("enumerable");
                if r.is_race_free() {
                    "ok".into()
                } else {
                    "racy".into()
                }
            })
            .collect();
        let kinds = {
            let r = try_check_program(&p, MemoryModel::Drfrlx, &limits).expect("enumerable");
            let ks: Vec<String> = r.race_kinds().iter().map(|k| format!("{k}")).collect();
            if ks.is_empty() {
                "-".to_string()
            } else {
                ks.join(",")
            }
        };
        let sc = match t.sc_only {
            None => "(skipped)".to_string(),
            Some(_) => {
                let cmp = compare_with_sc(&p, MemoryModel::Drfrlx, &limits).expect("explorable");
                if cmp.is_sc_only() {
                    "SC results only".to_string()
                } else {
                    format!("{} non-SC results", cmp.non_sc_results.len())
                }
            }
        };
        println!(
            "{:28} {:>5} {:>5} {:>7} {:24} {}",
            t.name, verdicts[0], verdicts[1], verdicts[2], kinds, sc
        );
    }
}
