//! Figure 2: program/conflict graphs and ordering paths, with and
//! without a non-ordering race.

use drfrlx_core::exec::{enumerate_sc, EnumLimits};
use drfrlx_core::pretty::{format_conflict_graph, format_execution};
use drfrlx_core::races::analyze;
use drfrlx_litmus::classic::{figure2a, figure2b};

fn main() {
    for (label, p) in [("Figure 2(a)", figure2a()), ("Figure 2(b)", figure2b())] {
        println!("==== {label}: {} ====", p.name());
        let execs = enumerate_sc(&p, &EnumLimits::default()).expect("enumerable");
        // Show the execution with the most events (the interesting path).
        let e = execs.iter().max_by_key(|e| e.len()).expect("has executions");
        println!("one SC execution ({} total):", execs.len());
        print!("{}", format_execution(&p, e));
        print!("{}", format_conflict_graph(&p, e));
        let mut kinds: Vec<String> = Vec::new();
        for ex in &execs {
            for r in analyze(ex).races() {
                let s = format!("{}", r.kind);
                if !kinds.contains(&s) {
                    kinds.push(s);
                }
            }
        }
        if kinds.is_empty() {
            println!("verdict: no illegal races in any SC execution\n");
        } else {
            println!("verdict: {}\n", kinds.join(", "));
        }
    }
}
