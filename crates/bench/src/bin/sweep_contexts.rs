//! Context-MLP sweep wrapper: `drfrlx bench sweep_contexts`.

fn main() {
    drfrlx_bench::cli_main("sweep_contexts");
}
