//! Ablation: hardware contexts per CU. Cross-context memory-level
//! parallelism is what lets the *stronger* models hide atomic latency;
//! with few contexts, DRFrlx's overlap is the only source of MLP and
//! its advantage is largest.

use drfrlx_core::SystemConfig;
use drfrlx_workloads::micro::HistGlobal;
use hsim_gpu::Kernel;
use hsim_sys::{run_workload, SysParams};

fn main() {
    println!("Context sweep: HG, GPU coherence, varying contexts per CU");
    println!("==========================================================");
    println!("{:>9} {:>12} {:>12} {:>14}", "contexts", "GD1 cycles", "GDR cycles", "GDR advantage");
    for contexts in [4usize, 8, 16, 32] {
        let mut params = SysParams::integrated();
        params.engine.max_contexts_per_cu = contexts;
        let mut k = HistGlobal::default();
        k.params.tpb = contexts; // one block per CU, fully resident
        let gd1 = run_workload(&k, SystemConfig::from_abbrev("GD1").unwrap(), &params);
        let gdr = run_workload(&k, SystemConfig::from_abbrev("GDR").unwrap(), &params);
        k.validate(&gd1.memory).expect("valid");
        k.validate(&gdr.memory).expect("valid");
        println!(
            "{:>9} {:>12} {:>12} {:>13.2}x",
            contexts,
            gd1.cycles,
            gdr.cycles,
            gd1.cycles as f64 / gdr.cycles as f64
        );
    }
    println!("\n(expected: the DRFrlx advantage shrinks as cross-context MLP grows —");
    println!(" with enough warps even serialized atomics keep the L2 banks busy)");
}
