//! §7 acquire/release ablation wrapper: `drfrlx bench ablation_acqrel`.

fn main() {
    drfrlx_bench::cli_main("ablation_acqrel");
}
