//! Ablation: one-sided acquire/release `seq` accesses in Seqlocks
//! (paper footnote 7 / §7 future work) vs full paired atomics.
//!
//! The release-only "read-don't-modify-write" skips the L1
//! self-invalidation, and the acquire-only lock CAS skips the store
//! buffer flush — so the reader keeps its payload lines across
//! iterations.

use drfrlx_core::{OpClass, SystemConfig};
use drfrlx_workloads::micro::{HistGlobal, Seqlocks};
use hsim_gpu::Kernel;
use hsim_sys::{run_workload, SysParams};

fn main() {
    let params = SysParams::integrated();
    println!("Ablation: Seqlocks with paired vs acquire/release seq accesses");
    println!("===============================================================");
    println!("{:6} {:>12} {:>12} {:>9} {:>14}", "config", "paired cyc", "acqrel cyc", "speedup", "inval (p/ar)");
    for cfg in ["GD0", "GDR", "DD0", "DDR"] {
        let config = SystemConfig::from_abbrev(cfg).unwrap();
        let paired = Seqlocks { acqrel: false, ..Seqlocks::default() };
        let acqrel = Seqlocks { acqrel: true, ..Seqlocks::default() };
        let rp = run_workload(&paired, config, &params);
        let ra = run_workload(&acqrel, config, &params);
        paired.validate(&rp.memory).expect("paired run valid");
        acqrel.validate(&ra.memory).expect("acqrel run valid");
        println!(
            "{:6} {:>12} {:>12} {:>8.2}x {:>7}/{:<7}",
            cfg,
            rp.cycles,
            ra.cycles,
            rp.cycles as f64 / ra.cycles as f64,
            rp.proto.invalidation_events,
            ra.proto.invalidation_events,
        );
    }
    println!("\n(acqrel matters under DRFrlx, where one-sided strengths are enforced;");
    println!(" under DRF0 both variants degrade to paired and must tie)");

    // Second study: a paired RMW pays the acquire side even when only
    // release ordering is needed. Annotating histogram increments as
    // Release instead of Paired keeps the input lines in the L1.
    println!("\nAblation: HG updates annotated Paired vs Release (GDR configuration)");
    println!("=====================================================================");
    let config = SystemConfig::from_abbrev("GDR").unwrap();
    println!("{:8} {:>12} {:>14} {:>12}", "class", "cycles", "invalidations", "L1 hit rate");
    for (label, class) in [("paired", OpClass::Paired), ("release", OpClass::Release)] {
        let k = HistGlobal { update_class: class, ..Default::default() };
        let r = run_workload(&k, config, &params);
        k.validate(&r.memory).expect("histogram exact");
        println!(
            "{:8} {:>12} {:>14} {:>11.1}%",
            label,
            r.cycles,
            r.proto.invalidation_events,
            100.0 * r.proto.l1_hits as f64 / (r.proto.l1_hits + r.proto.l1_misses) as f64,
        );
    }
}
