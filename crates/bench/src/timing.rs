//! Wall-clock micro-timing for the `harness = false` benches.
//!
//! A deliberately small substitute for an external benchmark harness
//! so the workspace builds offline: warm up, then run timed batches
//! and report the per-iteration median, minimum and mean.
//!
//! The machine-readable half ([`PerfReport`]) backs the committed perf
//! trajectory (`BENCH_*.json`): `drfrlx bench all --threads 1 --perf
//! FILE` records per-experiment wall-clock, and `--perf-baseline FILE`
//! joins a previous run of the same shape so the written file carries
//! before/after seconds and speedups.

use std::time::{Duration, Instant};

/// How a [`bench`] run is sampled.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Wall-clock budget for the warm-up phase.
    pub warm_up: Duration,
    /// Number of timed batches.
    pub samples: usize,
    /// Minimum wall-clock per batch (iterations scale to reach it).
    pub batch_time: Duration,
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig {
            warm_up: Duration::from_millis(100),
            samples: 10,
            batch_time: Duration::from_millis(50),
        }
    }
}

/// One benchmark's aggregated timing.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Benchmark label.
    pub name: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest per-iteration time seen in any batch.
    pub min: Duration,
    /// Mean per-iteration time over all batches.
    pub mean: Duration,
    /// Total iterations executed (excluding warm-up).
    pub iterations: u64,
}

fn per_iter(total: Duration, iters: u64) -> Duration {
    Duration::from_nanos((total.as_nanos() / u128::from(iters.max(1))) as u64)
}

/// Time `f`, print one `name  median  (min .. mean, N iters)` line and
/// return the aggregate. The closure's return value is black-boxed via
/// a volatile-ish sink to keep the optimizer honest.
pub fn bench<T>(name: &str, config: &TimingConfig, mut f: impl FnMut() -> T) -> Timing {
    // Warm up and discover a batch size.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < config.warm_up {
        sink(f());
        warm_iters += 1;
    }
    let est = warm_start.elapsed() / warm_iters.max(1) as u32;
    let batch: u64 =
        (config.batch_time.as_nanos() / est.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

    let mut per_iter_samples = Vec::with_capacity(config.samples);
    let mut iterations = 0u64;
    for _ in 0..config.samples {
        let t0 = Instant::now();
        for _ in 0..batch {
            sink(f());
        }
        per_iter_samples.push(per_iter(t0.elapsed(), batch));
        iterations += batch;
    }
    per_iter_samples.sort();
    let median = per_iter_samples[per_iter_samples.len() / 2];
    let min = per_iter_samples[0];
    let mean = per_iter(per_iter_samples.iter().sum(), per_iter_samples.len() as u64);
    let t = Timing { name: name.to_string(), median, min, mean, iterations };
    println!(
        "{:40} {:>12?} /iter  (min {:?}, mean {:?}, {} iters)",
        t.name, t.median, t.min, t.mean, t.iterations
    );
    t
}

/// Consume a value without letting the optimizer delete the work that
/// produced it (a `black_box` substitute on stable without unsafe).
fn sink<T>(value: T) {
    std::hint::black_box(&value);
}

/// One experiment's measured wall-clock.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Experiment id (`fig3`, `table4`, ...).
    pub id: String,
    /// Wall-clock seconds for one full run of the experiment.
    pub seconds: f64,
}

/// Per-experiment wall-clock for one invocation of a command, written
/// as (and re-parsed from) a stable JSON shape so consecutive runs can
/// be joined into a before/after trajectory file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    /// The command the measurements describe, e.g.
    /// `drfrlx bench all --threads 1`.
    pub command: String,
    /// Entries in run order.
    pub entries: Vec<PerfEntry>,
}

impl PerfReport {
    /// An empty report for `command`.
    pub fn new(command: &str) -> PerfReport {
        PerfReport { command: command.to_string(), entries: Vec::new() }
    }

    /// Append one measurement.
    pub fn record(&mut self, id: &str, seconds: f64) {
        self.entries.push(PerfEntry { id: id.to_string(), seconds });
    }

    /// Total wall-clock over all entries.
    pub fn total_seconds(&self) -> f64 {
        self.entries.iter().map(|e| e.seconds).sum()
    }

    /// Render the standalone JSON shape (no baseline): one entry per
    /// line so [`PerfReport::parse`] can re-read it.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"command\": \"{}\",\n  \"experiments\": [\n", self.command));
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"seconds\": {:.6}}}{sep}\n",
                e.id, e.seconds
            ));
        }
        out.push_str(&format!("  ],\n  \"total_seconds\": {:.6}\n}}\n", self.total_seconds()));
        out
    }

    /// Render the before/after trajectory shape, joining `self` (the
    /// *after* run) against `before` by experiment id. Experiments
    /// missing from `before` get `null` before/speedup fields, and the
    /// aggregates join by id too: `total_seconds_before` sums only the
    /// baseline rows that match an after row (so it is consistent with
    /// the rows actually printed), and when *nothing* joins — e.g. the
    /// baseline file describes a different command — the
    /// `total_seconds_before` and `aggregate_speedup` keys are omitted
    /// entirely rather than written as misleading zeros.
    pub fn to_json_vs(&self, before: &PerfReport) -> String {
        let look = |id: &str| before.entries.iter().find(|e| e.id == id).map(|e| e.seconds);
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"command\": \"{}\",\n  \"experiments\": [\n", self.command));
        for (i, e) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            let (b, s) = match look(&e.id) {
                Some(b) if e.seconds > 0.0 => (format!("{b:.6}"), format!("{:.3}", b / e.seconds)),
                Some(b) => (format!("{b:.6}"), "null".to_string()),
                None => ("null".to_string(), "null".to_string()),
            };
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"seconds_before\": {b}, \"seconds_after\": {:.6}, \
                 \"speedup\": {s}}}{sep}\n",
                e.id, e.seconds
            ));
        }
        let ta = self.total_seconds();
        let (mut jb, mut ja, mut joined) = (0.0, 0.0, 0usize);
        for e in &self.entries {
            if let Some(b) = look(&e.id) {
                jb += b;
                ja += e.seconds;
                joined += 1;
            }
        }
        out.push_str("  ],\n");
        if joined > 0 {
            out.push_str(&format!("  \"total_seconds_before\": {jb:.6},\n"));
        }
        out.push_str(&format!("  \"total_seconds_after\": {ta:.6}"));
        if joined > 0 && ja > 0.0 {
            out.push_str(&format!(",\n  \"aggregate_speedup\": {:.3}", jb / ja));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parse the standalone shape written by [`PerfReport::to_json`],
    /// or the trajectory shape written by [`PerfReport::to_json_vs`]
    /// (its *after* column — so each PR's committed trajectory is the
    /// next PR's baseline). Deliberately minimal (line-oriented, no
    /// general JSON parser): only consumes files this module wrote.
    pub fn parse(text: &str) -> Option<PerfReport> {
        fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
            let pat = format!("\"{key}\": ");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"'))
        }
        let mut report = PerfReport::default();
        for line in text.lines() {
            let line = line.trim();
            if let Some(cmd) = field(line, "command") {
                report.command = cmd.to_string();
            }
            let secs = field(line, "seconds").or_else(|| field(line, "seconds_after"));
            if let (Some(id), Some(secs)) = (field(line, "id"), secs) {
                report.record(id, secs.parse().ok()?);
            }
        }
        if report.entries.is_empty() {
            None
        } else {
            Some(report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_report_roundtrips_through_json() {
        let mut r = PerfReport::new("drfrlx bench all --threads 1");
        r.record("fig1", 1.25);
        r.record("fig3", 0.5);
        let parsed = PerfReport::parse(&r.to_json()).expect("parses own output");
        assert_eq!(parsed, r);
        assert!((r.total_seconds() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn vs_json_reports_speedups() {
        let mut before = PerfReport::new("cmd");
        before.record("fig1", 3.0);
        let mut after = PerfReport::new("cmd");
        after.record("fig1", 1.5);
        after.record("new_exp", 1.0);
        let j = after.to_json_vs(&before);
        assert!(j.contains("\"speedup\": 2.000"), "{j}");
        assert!(j.contains("\"seconds_before\": null"), "{j}");
        // Aggregate joins by id: `new_exp` has no baseline, so it
        // widens the totals but not the speedup (3.0 / 1.5, not
        // 3.0 / 2.5).
        assert!(j.contains("\"aggregate_speedup\": 2.000"), "{j}");
        assert!(j.contains("\"total_seconds_after\": 2.500"), "{j}");
        // ... and so does `total_seconds_before`: only fig1's baseline
        // counts, not whatever else the baseline file carried.
        assert!(j.contains("\"total_seconds_before\": 3.000000"), "{j}");
    }

    #[test]
    fn vs_json_omits_aggregates_when_nothing_joins() {
        // A baseline from a different command shares no ids: the rows
        // are all-null and the joined aggregates would be vacuous, so
        // they must be omitted — not written as 0.000 (which reads as
        // an infinite slowdown).
        let mut before = PerfReport::new("other_cmd");
        before.record("fig9", 4.0);
        let mut after = PerfReport::new("cmd");
        after.record("new_exp", 1.0);
        let j = after.to_json_vs(&before);
        assert!(j.contains("\"seconds_before\": null"), "{j}");
        assert!(!j.contains("total_seconds_before"), "{j}");
        assert!(!j.contains("aggregate_speedup"), "{j}");
        assert!(j.contains("\"total_seconds_after\": 1.000000"), "{j}");
        // The degenerate shape still parses as a baseline for the next run.
        assert_eq!(PerfReport::parse(&j).expect("parses"), after);
    }

    #[test]
    fn after_only_experiment_never_degrades_aggregate_speedup() {
        fn aggregate(json: &str) -> &str {
            let key = "\"aggregate_speedup\": ";
            let start = json.find(key).expect("aggregate present") + key.len();
            json[start..].split(['\n', ','] as [char; 2]).next().unwrap().trim()
        }
        let mut before = PerfReport::new("checker_bench");
        before.record("checker_suite_t1", 2.0);
        before.record("checker_stress_streaming", 1.0);
        let mut after = PerfReport::new("checker_bench");
        after.record("checker_suite_t1", 1.0);
        after.record("checker_stress_streaming", 0.5);
        let baseline_aggregate = aggregate(&after.to_json_vs(&before)).to_string();
        // A brand-new (after-only) experiment — however expensive —
        // must leave the joined aggregate untouched: it has no
        // baseline row to compare against.
        after.record("conform_corpus", 100.0);
        let with_new = after.to_json_vs(&before);
        assert_eq!(aggregate(&with_new), baseline_aggregate, "{with_new}");
        assert!(with_new.contains(
            "\"id\": \"conform_corpus\", \"seconds_before\": null, \
             \"seconds_after\": 100.000000, \"speedup\": null"
        ));
    }

    #[test]
    fn parse_reads_trajectory_after_column() {
        let mut before = PerfReport::new("cmd");
        before.record("fig1", 3.0);
        let mut after = PerfReport::new("cmd");
        after.record("fig1", 1.5);
        let parsed = PerfReport::parse(&after.to_json_vs(&before)).expect("parses vs shape");
        assert_eq!(parsed, after);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(PerfReport::parse("not json at all"), None);
    }
}
