//! Wall-clock micro-timing for the `harness = false` benches.
//!
//! A deliberately small substitute for an external benchmark harness
//! so the workspace builds offline: warm up, then run timed batches
//! and report the per-iteration median, minimum and mean.

use std::time::{Duration, Instant};

/// How a [`bench`] run is sampled.
#[derive(Debug, Clone)]
pub struct TimingConfig {
    /// Wall-clock budget for the warm-up phase.
    pub warm_up: Duration,
    /// Number of timed batches.
    pub samples: usize,
    /// Minimum wall-clock per batch (iterations scale to reach it).
    pub batch_time: Duration,
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig {
            warm_up: Duration::from_millis(100),
            samples: 10,
            batch_time: Duration::from_millis(50),
        }
    }
}

/// One benchmark's aggregated timing.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Benchmark label.
    pub name: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest per-iteration time seen in any batch.
    pub min: Duration,
    /// Mean per-iteration time over all batches.
    pub mean: Duration,
    /// Total iterations executed (excluding warm-up).
    pub iterations: u64,
}

fn per_iter(total: Duration, iters: u64) -> Duration {
    Duration::from_nanos((total.as_nanos() / u128::from(iters.max(1))) as u64)
}

/// Time `f`, print one `name  median  (min .. mean, N iters)` line and
/// return the aggregate. The closure's return value is black-boxed via
/// a volatile-ish sink to keep the optimizer honest.
pub fn bench<T>(name: &str, config: &TimingConfig, mut f: impl FnMut() -> T) -> Timing {
    // Warm up and discover a batch size.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < config.warm_up {
        sink(f());
        warm_iters += 1;
    }
    let est = warm_start.elapsed() / warm_iters.max(1) as u32;
    let batch: u64 =
        (config.batch_time.as_nanos() / est.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

    let mut per_iter_samples = Vec::with_capacity(config.samples);
    let mut iterations = 0u64;
    for _ in 0..config.samples {
        let t0 = Instant::now();
        for _ in 0..batch {
            sink(f());
        }
        per_iter_samples.push(per_iter(t0.elapsed(), batch));
        iterations += batch;
    }
    per_iter_samples.sort();
    let median = per_iter_samples[per_iter_samples.len() / 2];
    let min = per_iter_samples[0];
    let mean = per_iter(per_iter_samples.iter().sum(), per_iter_samples.len() as u64);
    let t = Timing { name: name.to_string(), median, min, mean, iterations };
    println!(
        "{:40} {:>12?} /iter  (min {:?}, mean {:?}, {} iters)",
        t.name, t.median, t.min, t.mean, t.iterations
    );
    t
}

/// Consume a value without letting the optimizer delete the work that
/// produced it (a `black_box` substitute on stable without unsafe).
fn sink<T>(value: T) {
    std::hint::black_box(&value);
}
