//! §6 headline averages: DRF1/DRFrlx vs DRF0, and DeNovo vs GPU
//! coherence, across all workloads (the paper's "on average" numbers).

use crate::experiment::{rows_by_workload, Experiment};
use crate::tables::geomean;
use drfrlx_workloads::all_workloads;
use hsim_sys::{total_ratio, RunReport, SimJob, SysParams};
use std::fmt::Write as _;

/// The §6 summary experiment (`section6`).
pub struct Section6;

impl Experiment for Section6 {
    fn id(&self) -> &'static str {
        "section6"
    }

    fn title(&self) -> &'static str {
        "Section 6 summary (geometric means over all workloads)"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let params = SysParams::integrated();
        all_workloads().iter().flat_map(|s| s.six_jobs(&params)).collect()
    }

    fn render(&self, jobs: &[SimJob], reports: &[RunReport]) -> String {
        let rows = rows_by_workload(jobs, reports);

        // Index: 0 GD0, 1 GD1, 2 GDR, 3 DD0, 4 DD1, 5 DDR.
        let ratio_time = |num: usize, den: usize| {
            geomean(
                rows.iter().map(|(_, r)| total_ratio(r[num].cycles as f64, r[den].cycles as f64)),
            )
        };
        let ratio_energy = |num: usize, den: usize| {
            geomean(rows.iter().map(|(_, r)| r[num].normalized_energy(&r[den])))
        };
        let pct = |x: f64| (1.0 - x) * 100.0;

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title());
        let _ = writeln!(out, "=======================================================");
        let _ = writeln!(out, "model effect (GPU coherence):");
        let _ = writeln!(
            out,
            "  DRF1   vs DRF0: exec -{:.0}%  energy -{:.0}%",
            pct(ratio_time(1, 0)),
            pct(ratio_energy(1, 0))
        );
        let _ = writeln!(
            out,
            "  DRFrlx vs DRF1: exec -{:.0}%  energy -{:.0}%",
            pct(ratio_time(2, 1)),
            pct(ratio_energy(2, 1))
        );
        let _ = writeln!(out, "model effect (DeNovo):");
        let _ = writeln!(
            out,
            "  DRF1   vs DRF0: exec -{:.0}%  energy -{:.0}%",
            pct(ratio_time(4, 3)),
            pct(ratio_energy(4, 3))
        );
        let _ = writeln!(
            out,
            "  DRFrlx vs DRF1: exec -{:.0}%  energy -{:.0}%",
            pct(ratio_time(5, 4)),
            pct(ratio_energy(5, 4))
        );
        let _ = writeln!(
            out,
            "protocol effect (DeNovo vs GPU), paper: exec -14/-14/-12%, energy -16/-18/-18%:"
        );
        let _ = writeln!(
            out,
            "  under DRF0  : exec -{:.0}%  energy -{:.0}%",
            pct(ratio_time(3, 0)),
            pct(ratio_energy(3, 0))
        );
        let _ = writeln!(
            out,
            "  under DRF1  : exec -{:.0}%  energy -{:.0}%",
            pct(ratio_time(4, 1)),
            pct(ratio_energy(4, 1))
        );
        let _ = writeln!(
            out,
            "  under DRFrlx: exec -{:.0}%  energy -{:.0}%",
            pct(ratio_time(5, 2)),
            pct(ratio_energy(5, 2))
        );

        let _ = writeln!(out, "\nper-workload execution time, normalized to GD0:");
        let _ = writeln!(
            out,
            "{:8} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "bench", "GD0", "GD1", "GDR", "DD0", "DD1", "DDR"
        );
        for (name, r) in &rows {
            let _ = write!(out, "{name:8}");
            for rep in r {
                let _ = write!(out, " {:>7.3}", rep.normalized_time(&r[0]));
            }
            let _ = writeln!(out);
        }
        out
    }
}
