//! `conform_matrix` and `conform_templates`: the two conformance
//! corpora run through the harness — every program compiled to a
//! simulator kernel, executed across the nine protocol × model
//! configurations under the default 128-schedule family, and checked
//! against the axiomatic oracle's allowed outcome set.
//!
//! `conform_matrix` covers the Table-1 litmus corpus;
//! `conform_templates` covers the richer template instances
//! ([`drfrlx_conform::templates`]) that exercise the micro workloads'
//! knobs — bounded polls, think delays, retry loops, and the scratch +
//! barrier histogram — end-to-end through the same pipeline.

use crate::experiment::Experiment;
use crate::json::JsonObj;
use drfrlx_conform::{
    compile, conform_jobs, render_corpus, report_from_runs, table1_corpus, template_corpus,
    ConformOptions, ConformReport,
};
use drfrlx_core::program::Program;
use drfrlx_core::MemoryModel;
use hsim_sys::{RunReport, SimJob};

/// The conformance-matrix experiment (`results/conform_matrix.*`).
pub struct ConformMatrix;

/// The template-corpus conformance experiment
/// (`results/conform_templates.*`).
pub struct ConformTemplates;

fn opts() -> ConformOptions {
    // threads only parallelizes the oracle here; the matrix itself runs
    // on the sweep engine. Results are thread-invariant either way.
    ConformOptions { threads: 1, ..ConformOptions::default() }
}

/// The flat job list of one corpus, in per-test [`conform_jobs`] order.
fn corpus_jobs(corpus: &[(String, Program)]) -> Vec<SimJob> {
    let o = opts();
    corpus.iter().flat_map(|(_, p)| conform_jobs(&compile(p), &o)).collect()
}

/// Rebuild per-test conformance reports from the flat report list.
fn reports_per_test(corpus: &[(String, Program)], reports: &[RunReport]) -> Vec<ConformReport> {
    let o = opts();
    let per_test = o.configs.len() * o.schedules;
    corpus
        .iter()
        .enumerate()
        .map(|(i, (_, p))| {
            let shape = compile(p);
            report_from_runs(&shape, &o, &reports[i * per_test..(i + 1) * per_test])
                .expect("corpus programs enumerate within default limits")
        })
        .collect()
}

/// Coverage as integer thousandths — floats stringify unstably.
fn millis(num: usize, den: usize) -> u64 {
    if den == 0 {
        return 1000;
    }
    (num as u64 * 1000) / den as u64
}

/// The per-test and per-config JSON rows of one corpus run.
fn corpus_json_rows(id: &str, reports: &[ConformReport]) -> Vec<String> {
    let mut rows = Vec::new();
    for r in reports {
        for v in &r.verdicts {
            rows.push(
                JsonObj::new()
                    .str("experiment", id)
                    .str("test", &r.name)
                    .str("config", v.config.abbrev())
                    .u64("allowed", r.allowed.len() as u64)
                    .u64("observed", v.observed.len() as u64)
                    .u64("violations", v.violations.len() as u64)
                    .bool("sound", v.violations.is_empty())
                    .finish(),
            );
        }
        rows.push(
            JsonObj::new()
                .str("experiment", id)
                .str("test", &r.name)
                .str("config", "all")
                .u64("allowed", r.allowed.len() as u64)
                .u64("observed", r.observed_union().len() as u64)
                .u64("witnessed", r.witnessed() as u64)
                .u64("coverage_millis", millis(r.witnessed(), r.allowed.len()))
                .u64(
                    "drf0_coverage_millis",
                    millis(r.witnessed_under(MemoryModel::Drf0), r.allowed.len()),
                )
                .bool("sound", r.sound())
                .finish(),
        );
    }
    rows
}

impl Experiment for ConformMatrix {
    fn id(&self) -> &'static str {
        "conform_matrix"
    }

    fn title(&self) -> &'static str {
        "Conformance: Table-1 litmus corpus vs the simulator (observed ⊆ allowed)"
    }

    fn jobs(&self) -> Vec<SimJob> {
        corpus_jobs(&table1_corpus())
    }

    fn render(&self, _jobs: &[SimJob], reports: &[RunReport]) -> String {
        render_corpus(&reports_per_test(&table1_corpus(), reports), &opts())
    }

    fn json_rows(&self, _jobs: &[SimJob], reports: &[RunReport]) -> Vec<String> {
        corpus_json_rows(self.id(), &reports_per_test(&table1_corpus(), reports))
    }
}

impl Experiment for ConformTemplates {
    fn id(&self) -> &'static str {
        "conform_templates"
    }

    fn title(&self) -> &'static str {
        "Conformance: template corpus vs the simulator (observed ⊆ allowed)"
    }

    fn jobs(&self) -> Vec<SimJob> {
        corpus_jobs(&template_corpus())
    }

    fn render(&self, _jobs: &[SimJob], reports: &[RunReport]) -> String {
        render_corpus(&reports_per_test(&template_corpus(), reports), &opts())
    }

    fn json_rows(&self, _jobs: &[SimJob], reports: &[RunReport]) -> Vec<String> {
        corpus_json_rows(self.id(), &reports_per_test(&template_corpus(), reports))
    }
}
