//! Extension study (`ext_mesi`): the CPU-class MESI-style writeback
//! baseline §2 contrasts against, measured instead of assumed. Every
//! microbenchmark runs under GD0 (the paper's baseline), DDR (the
//! paper's best), and MESI-WB under all three models (MD0, MD1, MDR).
//!
//! The interesting questions the grid answers: how much of DeNovo's
//! win comes from ownership alone (MESI has it too), what
//! writer-initiated invalidation costs under contention (sharer
//! recalls replace self-invalidation), and whether relaxed atomics
//! still pay off when acquires are already free.

use crate::experiment::{report_row, rows_by_workload, Experiment};
use crate::tables::{geomean, normalized_table, Metric};
use drfrlx_core::SystemConfig;
use drfrlx_workloads::{benchmarks, microbenchmarks};
use hsim_sys::{RunReport, SimJob, SysParams};
use std::fmt::Write as _;

/// The MESI-WB writeback-baseline extension experiment.
pub struct MesiBaseline;

const CONFIGS: [&str; 5] = ["GD0", "DDR", "MD0", "MD1", "MDR"];

impl Experiment for MesiBaseline {
    fn id(&self) -> &'static str {
        "ext_mesi"
    }

    fn title(&self) -> &'static str {
        "Extension: MESI-WB writeback baseline vs GPU/DeNovo on the microbenchmarks"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let params = SysParams::integrated();
        // The microbenchmarks are atomic-dominated; PR-1 rides along
        // because its read-shared-then-rewritten rank array is what
        // actually triggers writer-initiated sharer invalidation.
        let mut specs = microbenchmarks();
        specs.extend(benchmarks().into_iter().filter(|s| s.name == "PR-1"));
        specs
            .iter()
            .flat_map(|spec| {
                let kernel = spec.shared_kernel();
                CONFIGS.map(|abbrev| {
                    SimJob::new(
                        spec.name,
                        kernel.clone(),
                        SystemConfig::from_abbrev(abbrev).unwrap(),
                        &params,
                    )
                })
            })
            .collect()
    }

    fn render(&self, jobs: &[SimJob], reports: &[RunReport]) -> String {
        let rows = rows_by_workload(jobs, reports);
        let mut out = normalized_table(
            "Extension: MESI-WB execution time (normalized to GD0)",
            &rows,
            Metric::Time,
        );
        out.push_str(&normalized_table(
            "Extension: MESI-WB energy (normalized to GD0)",
            &rows,
            Metric::Energy,
        ));
        let _ = write!(out, "\n{:10}", "geomean");
        for col in 0..CONFIGS.len() {
            let g = geomean(
                rows.iter()
                    .filter_map(|(_, r)| Some(Metric::Time.normalized(r.get(col)?, r.first()?))),
            );
            let _ = write!(out, " {g:>7.3}");
        }
        let _ = writeln!(out, "  (time)");
        let _ = writeln!(
            out,
            "\n(MESI pays writer-initiated sharer invalidations instead of\n \
             acquire-side self-invalidation; `sharer_invalidations` in the\n \
             JSON rows counts the copies the directory recalled)"
        );
        out
    }

    fn json_rows(&self, jobs: &[SimJob], reports: &[RunReport]) -> Vec<String> {
        jobs.iter()
            .zip(reports)
            .map(|(job, report)| {
                let base = jobs
                    .iter()
                    .position(|j| j.workload == job.workload)
                    .map(|i| &reports[i])
                    .unwrap_or(report);
                report_row(self.id(), job, report, base)
                    .u64("sharer_invalidations", report.proto.sharer_invalidations)
                    .finish()
            })
            .collect()
    }
}
