//! Figure 1: speedup of relaxed atomics over SC atomics on a
//! discrete-GPU-like platform.
//!
//! The paper measured nine atomic-heavy applications on a GTX 680; we
//! run our nine distinct workloads on the discrete configuration,
//! comparing the annotated (relaxed) version under DRFrlx against the
//! all-SC-atomics version under DRF0 — both on GPU coherence, as on
//! real hardware.

use crate::experiment::Experiment;
use drfrlx_core::{MemoryModel, Protocol, SystemConfig};
use drfrlx_workloads::figure1_workloads;
use hsim_sys::{total_ratio, RunReport, SimJob, SysParams};
use std::fmt::Write as _;

/// The Figure 1 experiment (`fig1`).
pub struct Fig1;

const SC: SystemConfig = SystemConfig { protocol: Protocol::Gpu, model: MemoryModel::Drf0 };
const RLX: SystemConfig = SystemConfig { protocol: Protocol::Gpu, model: MemoryModel::Drfrlx };

impl Experiment for Fig1 {
    fn id(&self) -> &'static str {
        "fig1"
    }

    fn title(&self) -> &'static str {
        "Figure 1: relaxed vs SC atomics on a discrete GPU"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let params = SysParams::discrete_gpu();
        figure1_workloads().iter().flat_map(|s| [s.job(SC, &params), s.job(RLX, &params)]).collect()
    }

    fn render(&self, jobs: &[SimJob], reports: &[RunReport]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Figure 1: relaxed vs SC atomics on a discrete GPU");
        let _ = writeln!(out, "==================================================");
        let _ =
            writeln!(out, "{:8} {:>12} {:>12} {:>9}", "app", "SC cycles", "rlx cycles", "speedup");
        for (pair, job) in reports.chunks(2).zip(jobs.chunks(2)) {
            let (sc, rlx) = (&pair[0], &pair[1]);
            let _ = writeln!(
                out,
                "{:8} {:>12} {:>12} {:>8.2}x",
                job[0].workload,
                sc.cycles,
                rlx.cycles,
                total_ratio(sc.cycles as f64, rlx.cycles as f64)
            );
        }
        let _ = writeln!(out, "\n(shape target: ~1x for atomic-light apps, large for PR/BC-style");
        let _ = writeln!(out, " atomic storms — the paper saw up to 99x for PageRank)");
        out
    }
}
