//! Table 4: the qualitative benefits of DRF0/DRF1/DRFrlx, demonstrated
//! with measured event counts from one atomic-heavy run (HG).

use crate::experiment::Experiment;
use drfrlx_core::SystemConfig;
use drfrlx_workloads::microbenchmarks;
use hsim_sys::{RunReport, SimJob, SysParams};
use std::fmt::Write as _;

/// The Table 4 experiment (`table4`).
pub struct Table4;

impl Experiment for Table4 {
    fn id(&self) -> &'static str {
        "table4"
    }

    fn title(&self) -> &'static str {
        "Table 4: benefits of DRF0 / DRF1 / DRFrlx (measured on HG, GPU coherence)"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let params = SysParams::integrated();
        let spec = microbenchmarks().into_iter().find(|s| s.name == "HG").expect("HG registered");
        ["GD0", "GD1", "GDR"]
            .into_iter()
            .map(|abbrev| spec.job(SystemConfig::from_abbrev(abbrev).unwrap(), &params))
            .collect()
    }

    fn render(&self, _jobs: &[SimJob], reports: &[RunReport]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title());
        let _ = writeln!(
            out,
            "=========================================================================="
        );
        let _ = writeln!(
            out,
            "{:6} {:>14} {:>14} {:>18} {:>10}",
            "model", "invalidations", "SB flushes", "overlapped atomics", "cycles"
        );
        for r in reports {
            let _ = writeln!(
                out,
                "{:6} {:>14} {:>14} {:>18} {:>10}",
                r.config.abbrev(),
                r.proto.invalidation_events,
                r.proto.sb_flushes,
                r.atomics_overlapped,
                r.cycles
            );
        }
        let _ = writeln!(out, "\npaper's Table 4:");
        let _ = writeln!(
            out,
            "  avoid cache invalidations at atomic loads :  DRF0 x | DRF1 ok | DRFrlx ok"
        );
        let _ = writeln!(
            out,
            "  avoid store buffer flushes at atomic stores: DRF0 x | DRF1 ok | DRFrlx ok"
        );
        let _ = writeln!(
            out,
            "  overlap atomics in the memory system       : DRF0 x | DRF1 x  | DRFrlx ok"
        );
        out
    }
}
