//! Extension study (`ext_pr_residual`): adaptive PageRank with a
//! shared convergence residual — the Split Counter use case (§3.4)
//! embedded in a benchmark. Every rank update pushes |Δrank| into one
//! global accumulator; thread 0 peeks at the (approximate) total each
//! iteration. With paired atomics the accumulator is a serialization
//! point; with quantum atomics the adds overlap and the peek tolerates
//! partial sums.

use crate::experiment::Experiment;
use drfrlx_core::{OpClass, SystemConfig};
use drfrlx_workloads::{graphs, pagerank::PageRank};
use hsim_sys::{RunReport, SimJob, SysParams};
use std::fmt::Write as _;
use std::sync::Arc;

/// The PageRank-residual extension experiment.
pub struct PrResidual;

const CONFIGS: [&str; 3] = ["GD0", "GDR", "DDR"];
const VARIANTS: [&str; 3] = ["no residual", "residual, paired", "residual, quantum"];

fn variants() -> Vec<(String, PageRank)> {
    let graph = graphs::contact_like("ext", 768, 3, 31);
    let base = PageRank::new(graph, 2, 15, 16);
    let mut paired = base.clone();
    paired.track_residual = true;
    paired.residual_class = OpClass::Paired;
    let mut quantum = base.clone();
    quantum.track_residual = true;
    quantum.residual_class = OpClass::Quantum;
    VARIANTS.iter().map(|v| v.to_string()).zip([base, paired, quantum]).collect()
}

impl Experiment for PrResidual {
    fn id(&self) -> &'static str {
        "ext_pr_residual"
    }

    fn title(&self) -> &'static str {
        "Extension: PageRank + convergence residual (quantum vs paired accumulator)"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let params = SysParams::integrated();
        let mut jobs = Vec::new();
        for (label, pr) in variants() {
            let kernel: Arc<dyn hsim_gpu::Kernel> = Arc::new(pr);
            for abbrev in CONFIGS {
                jobs.push(SimJob::new(
                    label.clone(),
                    Arc::clone(&kernel),
                    SystemConfig::from_abbrev(abbrev).unwrap(),
                    &params,
                ));
            }
        }
        jobs
    }

    fn render(&self, jobs: &[SimJob], reports: &[RunReport]) -> String {
        let verts = graphs::contact_like("ext", 768, 3, 31).verts();
        let mut out = String::new();
        let _ = writeln!(out, "Extension: PageRank + convergence residual (graph: {verts} verts)");
        let _ = writeln!(out, "==============================================================");
        let _ = writeln!(
            out,
            "{:24} {:>10} {:>10} {:>10}",
            "variant", CONFIGS[0], CONFIGS[1], CONFIGS[2]
        );
        for (row, job) in reports.chunks(CONFIGS.len()).zip(jobs.chunks(CONFIGS.len())) {
            let _ = write!(out, "{:24}", job[0].workload);
            for r in row {
                let _ = write!(out, " {:>10}", r.cycles);
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "\n(expected: the paired residual accumulator costs every config;");
        let _ = writeln!(out, " the quantum one is nearly free under DRFrlx)");
        out
    }
}
