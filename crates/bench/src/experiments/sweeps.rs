//! Parameter sweeps: the §4.4 contention/bins aside and the
//! hardware-context MLP study.

use crate::experiment::Experiment;
use drfrlx_core::SystemConfig;
use drfrlx_workloads::micro::{HistGlobal, HistParams};
use hsim_sys::{six_config_jobs, total_ratio, RunReport, SimJob, SysParams};
use std::fmt::Write as _;
use std::sync::Arc;

const BINS: [usize; 4] = [32, 128, 256, 1024];

/// The §4.4 aside (`sweep_contention`): "we examined different levels
/// of contention and number of bins for the histogram applications.
/// More bins and reduced contention improve performance for all
/// configurations, but did not change the observed trends."
pub struct Contention;

impl Experiment for Contention {
    fn id(&self) -> &'static str {
        "sweep_contention"
    }

    fn title(&self) -> &'static str {
        "Contention sweep: HG with varying bin counts"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let params = SysParams::integrated();
        BINS.iter()
            .flat_map(|&bins| {
                let k = HistGlobal::new(
                    HistParams { bins, ..HistParams::default() },
                    drfrlx_core::OpClass::Commutative,
                );
                six_config_jobs(&format!("HG-b{bins}"), Arc::new(k), &params, true)
            })
            .collect()
    }

    fn render(&self, _jobs: &[SimJob], reports: &[RunReport]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title());
        let _ = writeln!(out, "=============================================");
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "bins", "GD0 cyc", "GD1", "GDR", "DD0", "DD1", "DDR"
        );
        for (row, &bins) in reports.chunks(6).zip(BINS.iter()) {
            let _ = write!(out, "{:>6} {:>10}", bins, row[0].cycles);
            for r in &row[1..] {
                let _ = write!(out, " {:>7.3}", r.normalized_time(&row[0]));
            }
            let _ = writeln!(out);
        }
        let _ =
            writeln!(out, "\n(expected: absolute cycles fall as bins grow; the GD0 ≥ GD1 ≥ GDR");
        let _ = writeln!(out, " and DD0 ≥ DD1 ≥ DDR orderings hold at every contention level)");
        out
    }
}

const CONTEXTS: [usize; 4] = [4, 8, 16, 32];

/// The hardware-context MLP sweep (`sweep_contexts`): cross-context
/// memory-level parallelism is what lets the *stronger* models hide
/// atomic latency; with few contexts, DRFrlx's overlap is the only
/// source of MLP and its advantage is largest.
pub struct Contexts;

impl Experiment for Contexts {
    fn id(&self) -> &'static str {
        "sweep_contexts"
    }

    fn title(&self) -> &'static str {
        "Context sweep: HG, GPU coherence, varying contexts per CU"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let gd1 = SystemConfig::from_abbrev("GD1").unwrap();
        let gdr = SystemConfig::from_abbrev("GDR").unwrap();
        CONTEXTS
            .iter()
            .flat_map(|&contexts| {
                let mut params = SysParams::integrated();
                params.engine.max_contexts_per_cu = contexts;
                // One block per CU, fully resident.
                let k = HistGlobal::new(
                    HistParams { tpb: contexts, ..HistParams::default() },
                    drfrlx_core::OpClass::Commutative,
                );
                let kernel: Arc<dyn hsim_gpu::Kernel> = Arc::new(k);
                let workload = format!("HG-c{contexts}");
                [gd1, gdr].into_iter().map(move |config| SimJob {
                    workload: workload.clone(),
                    kernel: Arc::clone(&kernel),
                    config,
                    params: params.clone(),
                    validate: true,
                    trace: None,
                })
            })
            .collect()
    }

    fn render(&self, _jobs: &[SimJob], reports: &[RunReport]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title());
        let _ = writeln!(out, "==========================================================");
        let _ = writeln!(
            out,
            "{:>9} {:>12} {:>12} {:>14}",
            "contexts", "GD1 cycles", "GDR cycles", "GDR advantage"
        );
        for (pair, &contexts) in reports.chunks(2).zip(CONTEXTS.iter()) {
            let (gd1, gdr) = (&pair[0], &pair[1]);
            let _ = writeln!(
                out,
                "{:>9} {:>12} {:>12} {:>13.2}x",
                contexts,
                gd1.cycles,
                gdr.cycles,
                total_ratio(gd1.cycles as f64, gdr.cycles as f64)
            );
        }
        let _ =
            writeln!(out, "\n(expected: the DRFrlx advantage shrinks as cross-context MLP grows —");
        let _ = writeln!(out, " with enough warps even serialized atomics keep the L2 banks busy)");
        out
    }
}
