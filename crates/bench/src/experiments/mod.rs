//! The experiment registry: every simulation-backed paper artifact as
//! one [`Experiment`], keyed by a stable id.
//!
//! | id | artifact |
//! |----|----------|
//! | `fig1` | Figure 1: relaxed vs SC atomics on a discrete GPU |
//! | `fig3` | Figure 3: microbenchmark time + energy, 6 configs |
//! | `fig4` | Figure 4: benchmark time + energy, 6 configs |
//! | `table4` | Table 4: measured benefits per model |
//! | `section6` | §6: the paper's headline averages |
//! | `sweep_contention` | §4.4 bins/contention sweep |
//! | `sweep_contexts` | hardware-context MLP sweep |
//! | `ablation_coalescing` | §6.3 DeNovo MSHR atomic coalescing |
//! | `ablation_acqrel` | §7 acquire/release one-sided atomics |
//! | `ext_sssp` | extension: SSSP across all six configs |
//! | `ext_pr_residual` | extension: quantum residual in PageRank |
//! | `ext_mesi` | extension: MESI-WB writeback baseline, 3 models |
//! | `hotspots` | diagnostic: protocol event profile GD0 vs DDR |
//! | `conform_matrix` | conformance: Table-1 corpus vs the simulator |
//! | `conform_templates` | conformance: template corpus (polls, think, scratch + barrier) |
//!
//! The static artifacts (Figure 2, Tables 1–3, Listing 7) have no
//! simulation matrix and keep their dedicated binaries.

mod ablations;
mod conform;
mod fig1;
mod hotspots;
mod mesi;
mod residual;
mod section6;
mod sweeps;
mod table4;

use crate::experiment::{rows_by_workload, Experiment};
use crate::tables::{energy_components_table, normalized_table, Metric};
use drfrlx_workloads::registry::extensions;
use drfrlx_workloads::{benchmarks, microbenchmarks, WorkloadSpec};
use hsim_sys::{RunReport, SimJob, SysParams};

/// A rows × six-configs grid experiment rendered as the standard
/// normalized time table, energy table, and (optionally) the energy
/// component breakdown — the shape of Figures 3/4 and the extension
/// figures.
pub struct GridExperiment {
    id: &'static str,
    title: &'static str,
    time_title: &'static str,
    energy_title: &'static str,
    specs: Vec<WorkloadSpec>,
    params: SysParams,
    energy_components: bool,
}

impl Experiment for GridExperiment {
    fn id(&self) -> &'static str {
        self.id
    }

    fn title(&self) -> &'static str {
        self.title
    }

    fn jobs(&self) -> Vec<SimJob> {
        self.specs.iter().flat_map(|s| s.six_jobs(&self.params)).collect()
    }

    fn render(&self, jobs: &[SimJob], reports: &[RunReport]) -> String {
        let rows = rows_by_workload(jobs, reports);
        let mut out = normalized_table(self.time_title, &rows, Metric::Time);
        out.push_str(&normalized_table(self.energy_title, &rows, Metric::Energy));
        if self.energy_components {
            out.push_str(&energy_components_table(&rows));
        }
        out
    }
}

fn fig3() -> GridExperiment {
    GridExperiment {
        id: "fig3",
        title: "Figure 3: microbenchmark execution time and energy, 6 configs",
        time_title: "Figure 3(a): microbenchmark execution time (normalized to GD0)",
        energy_title: "Figure 3(b): microbenchmark energy (normalized to GD0)",
        specs: microbenchmarks(),
        params: SysParams::integrated(),
        energy_components: true,
    }
}

fn fig4() -> GridExperiment {
    GridExperiment {
        id: "fig4",
        title: "Figure 4: benchmark execution time and energy, 6 configs",
        time_title: "Figure 4(a): benchmark execution time (normalized to GD0)",
        energy_title: "Figure 4(b): benchmark energy (normalized to GD0)",
        specs: benchmarks(),
        params: SysParams::integrated(),
        energy_components: true,
    }
}

fn ext_sssp() -> GridExperiment {
    GridExperiment {
        id: "ext_sssp",
        title: "Extension: SSSP across all six configurations",
        time_title: "Extension: SSSP execution time (normalized to GD0)",
        energy_title: "Extension: SSSP energy (normalized to GD0)",
        specs: extensions().into_iter().filter(|s| s.name.starts_with("SSSP")).collect(),
        params: SysParams::integrated(),
        energy_components: false,
    }
}

/// Every registered experiment, in the paper's presentation order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(fig1::Fig1),
        Box::new(fig3()),
        Box::new(fig4()),
        Box::new(table4::Table4),
        Box::new(section6::Section6),
        Box::new(sweeps::Contention),
        Box::new(sweeps::Contexts),
        Box::new(ablations::Coalescing),
        Box::new(ablations::AcqRel),
        Box::new(ext_sssp()),
        Box::new(residual::PrResidual),
        Box::new(mesi::MesiBaseline),
        Box::new(hotspots::Hotspots),
        Box::new(conform::ConformMatrix),
        Box::new(conform::ConformTemplates),
    ]
}

/// Registered experiment ids, in registry order.
pub fn ids() -> Vec<&'static str> {
    registry().iter().map(|e| e.id()).collect()
}

/// Look an experiment up by id.
pub fn find(id: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_findable() {
        let ids = ids();
        for id in &ids {
            assert!(find(id).is_some(), "{id} not findable");
        }
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate experiment ids");
    }

    #[test]
    fn grid_experiments_cover_the_six_configs() {
        for e in [fig3(), fig4(), ext_sssp()] {
            let jobs = e.jobs();
            assert_eq!(jobs.len() % 6, 0);
            for row in jobs.chunks(6) {
                let abbrevs: Vec<&str> = row.iter().map(|j| j.config.abbrev()).collect();
                assert_eq!(abbrevs, ["GD0", "GD1", "GDR", "DD0", "DD1", "DDR"]);
                assert!(row.iter().all(|j| j.workload == row[0].workload));
            }
        }
    }
}
