//! Mechanism ablations: DeNovo's MSHR atomic coalescing (§6.3) and
//! one-sided acquire/release atomics (§7 / footnote 7).

use crate::experiment::Experiment;
use drfrlx_core::{OpClass, SystemConfig};
use drfrlx_workloads::micro::{HistGlobal, HistParams, Seqlocks, SplitCounter};
use hsim_sys::{total_ratio, RunReport, SimJob, SysParams};
use std::fmt::Write as _;
use std::sync::Arc;

/// §6.3 (`ablation_coalescing`): "allows DeNovo with DRFrlx to quickly
/// service many overlapped atomic requests ... GPU coherence cannot
/// coalesce".
pub struct Coalescing;

impl Experiment for Coalescing {
    fn id(&self) -> &'static str {
        "ablation_coalescing"
    }

    fn title(&self) -> &'static str {
        "Ablation: DeNovo MSHR atomic coalescing (DDR configuration)"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let on = SysParams::integrated();
        let mut off = SysParams::integrated();
        off.memsys.atomic_coalescing = false;
        let ddr = SystemConfig::from_abbrev("DDR").unwrap();
        let hg: Arc<dyn hsim_gpu::Kernel> = Arc::new(HistGlobal::default());
        let sc: Arc<dyn hsim_gpu::Kernel> = Arc::new(SplitCounter::default());
        [("HG", hg), ("SC", sc)]
            .into_iter()
            .flat_map(|(name, kernel)| {
                [(format!("{name}+coal"), &on), (format!("{name}-coal"), &off)].into_iter().map(
                    move |(workload, params)| SimJob {
                        workload,
                        kernel: Arc::clone(&kernel),
                        config: ddr,
                        params: params.clone(),
                        validate: true,
                        trace: None,
                    },
                )
            })
            .collect()
    }

    fn render(&self, jobs: &[SimJob], reports: &[RunReport]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title());
        let _ = writeln!(out, "=============================================================");
        let _ = writeln!(
            out,
            "{:10} {:>12} {:>12} {:>9} {:>11}",
            "bench", "with", "without", "benefit", "coalesced"
        );
        for (pair, job) in reports.chunks(2).zip(jobs.chunks(2)) {
            let (with, without) = (&pair[0], &pair[1]);
            let name = job[0].workload.trim_end_matches("+coal");
            let _ = writeln!(
                out,
                "{:10} {:>12} {:>12} {:>8.2}x {:>11}",
                name,
                with.cycles,
                without.cycles,
                total_ratio(without.cycles as f64, with.cycles as f64),
                with.proto.mshr_coalesced,
            );
        }
        out
    }
}

const ACQREL_CONFIGS: [&str; 4] = ["GD0", "GDR", "DD0", "DDR"];

/// §7 / footnote 7 (`ablation_acqrel`): one-sided acquire/release
/// `seq` accesses in Seqlocks vs full paired atomics, plus HG updates
/// annotated `Release` instead of `Paired`.
///
/// The release-only "read-don't-modify-write" skips the L1
/// self-invalidation, and the acquire-only lock CAS skips the store
/// buffer flush — so the reader keeps its payload lines across
/// iterations.
pub struct AcqRel;

impl Experiment for AcqRel {
    fn id(&self) -> &'static str {
        "ablation_acqrel"
    }

    fn title(&self) -> &'static str {
        "Ablation: Seqlocks with paired vs acquire/release seq accesses"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let params = SysParams::integrated();
        let d = Seqlocks::default();
        let paired: Arc<dyn hsim_gpu::Kernel> = Arc::new(Seqlocks::new(
            false,
            d.blocks,
            d.tpb,
            d.payload,
            d.writes,
            d.reads,
            d.max_retries,
        ));
        let acqrel: Arc<dyn hsim_gpu::Kernel> = Arc::new(Seqlocks::new(
            true,
            d.blocks,
            d.tpb,
            d.payload,
            d.writes,
            d.reads,
            d.max_retries,
        ));
        let mut jobs: Vec<SimJob> = ACQREL_CONFIGS
            .iter()
            .flat_map(|abbrev| {
                let config = SystemConfig::from_abbrev(abbrev).unwrap();
                [
                    SimJob::new("SEQ-paired", Arc::clone(&paired), config, &params),
                    SimJob::new("SEQ-acqrel", Arc::clone(&acqrel), config, &params),
                ]
            })
            .collect();
        // Second study: a paired RMW pays the acquire side even when
        // only release ordering is needed.
        let gdr = SystemConfig::from_abbrev("GDR").unwrap();
        for (label, class) in [("HG-paired", OpClass::Paired), ("HG-release", OpClass::Release)] {
            let k = HistGlobal::new(HistParams::default(), class);
            jobs.push(SimJob::new(label, Arc::new(k), gdr, &params));
        }
        jobs
    }

    fn render(&self, _jobs: &[SimJob], reports: &[RunReport]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title());
        let _ = writeln!(out, "===============================================================");
        let _ = writeln!(
            out,
            "{:6} {:>12} {:>12} {:>9} {:>14}",
            "config", "paired cyc", "acqrel cyc", "speedup", "inval (p/ar)"
        );
        let (seq, hg) = reports.split_at(2 * ACQREL_CONFIGS.len());
        for (pair, abbrev) in seq.chunks(2).zip(ACQREL_CONFIGS.iter()) {
            let (rp, ra) = (&pair[0], &pair[1]);
            let _ = writeln!(
                out,
                "{:6} {:>12} {:>12} {:>8.2}x {:>7}/{:<7}",
                abbrev,
                rp.cycles,
                ra.cycles,
                total_ratio(rp.cycles as f64, ra.cycles as f64),
                rp.proto.invalidation_events,
                ra.proto.invalidation_events,
            );
        }
        let _ = writeln!(
            out,
            "\n(acqrel matters under DRFrlx, where one-sided strengths are enforced;"
        );
        let _ = writeln!(out, " under DRF0 both variants degrade to paired and must tie)");

        let _ =
            writeln!(out, "\nAblation: HG updates annotated Paired vs Release (GDR configuration)");
        let _ =
            writeln!(out, "=====================================================================");
        let _ = writeln!(
            out,
            "{:8} {:>12} {:>14} {:>12}",
            "class", "cycles", "invalidations", "L1 hit rate"
        );
        for (label, r) in ["paired", "release"].iter().zip(hg) {
            let _ = writeln!(
                out,
                "{:8} {:>12} {:>14} {:>11.1}%",
                label,
                r.cycles,
                r.proto.invalidation_events,
                100.0
                    * total_ratio(
                        r.proto.l1_hits as f64,
                        (r.proto.l1_hits + r.proto.l1_misses) as f64
                    ),
            );
        }
        out
    }
}
