//! Diagnostic (`hotspots`): where do the cycles go? Per-workload
//! protocol event profile under GD0 vs DDR — the mechanism view behind
//! Figures 3/4.

use crate::experiment::Experiment;
use drfrlx_core::SystemConfig;
use drfrlx_workloads::all_workloads;
use hsim_sys::{RunReport, SimJob, SysParams};
use std::fmt::Write as _;

/// The protocol-event-profile diagnostic.
pub struct Hotspots;

impl Experiment for Hotspots {
    fn id(&self) -> &'static str {
        "hotspots"
    }

    fn title(&self) -> &'static str {
        "Protocol event profile (GD0 vs DDR)"
    }

    fn jobs(&self) -> Vec<SimJob> {
        let params = SysParams::integrated();
        let gd0 = SystemConfig::from_abbrev("GD0").unwrap();
        let ddr = SystemConfig::from_abbrev("DDR").unwrap();
        all_workloads().iter().flat_map(|s| [s.job(gd0, &params), s.job(ddr, &params)]).collect()
    }

    fn render(&self, jobs: &[SimJob], reports: &[RunReport]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Protocol event profile (GD0 → DDR)");
        let _ = writeln!(
            out,
            "==================================================================================="
        );
        let _ = writeln!(
            out,
            "{:8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "bench",
            "GD0 cyc",
            "DDR cyc",
            "inv GD0",
            "inv DDR",
            "l2at GD0",
            "l1at DDR",
            "coal DDR",
            "rmt DDR"
        );
        for (pair, job) in reports.chunks(2).zip(jobs.chunks(2)) {
            let (gd0, ddr) = (&pair[0], &pair[1]);
            let _ = writeln!(
                out,
                "{:8} {:>9} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9}",
                job[0].workload,
                gd0.cycles,
                ddr.cycles,
                gd0.proto.invalidation_events,
                ddr.proto.invalidation_events,
                gd0.proto.atomics_at_l2,
                ddr.proto.atomics_at_l1,
                ddr.proto.mshr_coalesced,
                ddr.proto.remote_l1_transfers,
            );
        }
        out
    }
}
