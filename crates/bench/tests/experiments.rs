//! Harness-level integration tests: every registered experiment has a
//! well-formed job matrix, runs are byte-identical regardless of the
//! worker count, and the JSON rows have the golden shape.

use drfrlx_bench::{find, ids, registry, run_experiment};
use drfrlx_core::SystemConfig;

const SIX: [&str; 6] = ["GD0", "GD1", "GDR", "DD0", "DD1", "DDR"];

/// Structural check for the whole registry, with no simulation: every
/// experiment declares a non-empty matrix of labeled jobs, and its
/// per-workload config row never repeats a configuration.
#[test]
fn every_experiment_declares_a_wellformed_matrix() {
    for e in registry() {
        let jobs = e.jobs();
        assert!(!jobs.is_empty(), "{}: empty job matrix", e.id());
        assert!(!e.title().is_empty(), "{}: empty title", e.id());
        let mut row_start = 0;
        for i in 0..=jobs.len() {
            if i == jobs.len() || (i > row_start && jobs[i].workload != jobs[row_start].workload) {
                let row = &jobs[row_start..i];
                assert!(!row[0].workload.is_empty(), "{}: unlabeled job", e.id());
                let mut abbrevs: Vec<&str> = row.iter().map(|j| j.config.abbrev()).collect();
                abbrevs.sort_unstable();
                abbrevs.dedup();
                assert_eq!(
                    abbrevs.len(),
                    row.len(),
                    "{}: workload {} repeats a config",
                    e.id(),
                    row[0].workload
                );
                row_start = i;
            }
        }
    }
}

/// The six-config grid experiments walk `SystemConfig::all()` in order
/// for every workload — the invariant the normalized tables and the
/// JSON baselines (first job per workload = GD0) rely on.
#[test]
fn grid_experiments_walk_the_six_configs_in_order() {
    let all: Vec<&str> = SystemConfig::all().iter().map(|c| c.abbrev()).collect();
    assert_eq!(all, SIX);
    for id in ["fig3", "fig4", "section6", "ext_sssp", "sweep_contention"] {
        let e = find(id).unwrap();
        let jobs = e.jobs();
        assert_eq!(jobs.len() % 6, 0, "{id}: not a 6-config grid");
        for row in jobs.chunks(6) {
            let abbrevs: Vec<&str> = row.iter().map(|j| j.config.abbrev()).collect();
            assert_eq!(abbrevs, SIX, "{id}: row {} out of order", row[0].workload);
            assert!(row.iter().all(|j| j.workload == row[0].workload));
        }
    }
}

/// Figure 3/4 cover exactly the Table 3 workload registry, in order.
#[test]
fn figure_grids_cover_the_registered_workloads() {
    let micro: Vec<String> =
        drfrlx_workloads::microbenchmarks().iter().map(|s| s.name.to_string()).collect();
    let bench: Vec<String> =
        drfrlx_workloads::benchmarks().iter().map(|s| s.name.to_string()).collect();
    for (id, expect) in [("fig3", micro), ("fig4", bench)] {
        let jobs = find(id).unwrap().jobs();
        let rows: Vec<String> = jobs.chunks(6).map(|row| row[0].workload.clone()).collect();
        assert_eq!(rows, expect, "{id}: workload rows diverge from the registry");
    }
}

/// The tentpole guarantee: a parallel sweep is byte-identical to the
/// serial one — same cycles, counters and artifacts, in job order.
#[test]
fn experiment_runs_are_identical_across_thread_counts() {
    let e = find("table4").unwrap();
    let serial = run_experiment(e.as_ref(), 1);
    for threads in [2, 8] {
        let parallel = run_experiment(e.as_ref(), threads);
        assert_eq!(serial.text, parallel.text, "text artifact differs at {threads} threads");
        assert_eq!(serial.json, parallel.json, "json artifact differs at {threads} threads");
        assert_eq!(serial.reports.len(), parallel.reports.len());
        for (s, p) in serial.reports.iter().zip(&parallel.reports) {
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.counters, p.counters);
            assert_eq!(s.proto, p.proto);
            assert_eq!(s.config, p.config);
        }
    }
}

/// Golden shape of the JSON-lines artifact, on the cheapest real
/// experiment: one row per job, every row carries the identity and
/// metric fields, and normalization never leaks NaN/inf (total
/// ratios render as plain numbers, degenerate ones as null — never
/// bare `NaN` or `inf`, which are not JSON).
#[test]
fn json_rows_have_the_golden_shape() {
    let e = find("table4").unwrap();
    let run = run_experiment(e.as_ref(), 1);
    let jobs = e.jobs();
    assert_eq!(run.json.len(), jobs.len());
    for (row, job) in run.json.iter().zip(&jobs) {
        assert!(row.starts_with('{') && row.ends_with('}'), "not an object: {row}");
        assert!(row.contains("\"experiment\":\"table4\""), "{row}");
        assert!(row.contains(&format!("\"workload\":\"{}\"", job.workload)), "{row}");
        assert!(row.contains(&format!("\"config\":\"{}\"", job.config.abbrev())), "{row}");
        for key in [
            "\"platform\":",
            "\"cycles\":",
            "\"normalized_time\":",
            "\"energy_total\":",
            "\"normalized_energy\":",
            "\"energy\":",
            "\"counters\":",
            "\"proto\":",
            "\"atomics\":",
            "\"atomics_overlapped\":",
        ] {
            assert!(row.contains(key), "missing {key} in {row}");
        }
        assert!(!row.contains("NaN") && !row.contains("inf"), "non-finite leaked: {row}");
        assert!(
            !row.contains("\"normalized_time\":null")
                && !row.contains("\"normalized_energy\":null"),
            "normalization must be total: {row}"
        );
    }
    // The first row of each workload is its own baseline.
    assert!(run.json[0].contains("\"normalized_time\":1"), "{}", run.json[0]);
    assert!(run.json[0].contains("\"normalized_energy\":1"), "{}", run.json[0]);
}

/// The registry and the root CLI agree on what exists.
#[test]
fn registry_covers_the_paper_artifacts() {
    assert_eq!(
        ids(),
        [
            "fig1",
            "fig3",
            "fig4",
            "table4",
            "section6",
            "sweep_contention",
            "sweep_contexts",
            "ablation_coalescing",
            "ablation_acqrel",
            "ext_sssp",
            "ext_pr_residual",
            "ext_mesi",
            "hotspots",
            "conform_matrix",
            "conform_templates",
        ]
    );
}
