//! Golden-artifact tests: the committed `results/` files are the
//! reference output of every experiment, and regenerating them must be
//! byte-identical — the contract the scheduler/relation/NoC hot-path
//! rewrites are held to.
//!
//! The cheap experiments and all static (non-simulation) binaries run
//! in the normal test pass; the full 12-experiment sweep is `#[ignore]`
//! because it re-simulates every figure (run it explicitly, in release:
//! `cargo test -q -p drfrlx-bench --release -- --ignored`).

use drfrlx_bench::json::parse_json;
use drfrlx_bench::{find, ids, run_experiment};
use std::path::{Path, PathBuf};
use std::process::Command;

fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn committed(name: &str) -> String {
    let path = results_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed artifact {}: {e}", path.display()))
}

/// `write_artifacts` normalizes the text artifact to end with one
/// newline; apply the same rule before comparing.
fn as_txt_artifact(text: &str) -> String {
    let mut t = text.to_string();
    if !t.ends_with('\n') {
        t.push('\n');
    }
    t
}

fn assert_experiment_matches(id: &str) {
    let e = find(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    let run = run_experiment(e.as_ref(), 1);
    assert_eq!(
        as_txt_artifact(&run.text),
        committed(&format!("{id}.txt")),
        "{id}.txt drifted from the committed artifact"
    );
    let mut json = run.json.join("\n");
    json.push('\n');
    assert_eq!(json, committed(&format!("{id}.json")), "{id}.json drifted");
}

/// The cheapest simulation-backed experiments stay byte-identical to
/// their committed artifacts on every test run.
#[test]
fn cheap_experiments_match_committed_artifacts() {
    for id in ["table4", "sweep_contexts", "ablation_coalescing"] {
        assert_experiment_matches(id);
    }
}

/// The conformance matrix (litmus corpus × 9 configs × 128 schedules)
/// regenerates its committed artifacts byte-for-byte. Separate from
/// the cheap batch so a conformance drift is named in the failure.
#[test]
fn conform_matrix_matches_committed_artifacts() {
    assert_experiment_matches("conform_matrix");
}

/// The template-corpus conformance run (richer instances of the same
/// shared emitters: polls, think delays, retries, scratch + barrier)
/// regenerates its committed artifacts byte-for-byte and stays SOUND.
#[test]
fn conform_templates_match_committed_artifacts() {
    assert_experiment_matches("conform_templates");
}

/// Every static artifact (model-only binaries that print the committed
/// file to stdout) is byte-identical to its committed counterpart.
#[test]
fn static_binaries_match_committed_artifacts() {
    for (exe, artifact) in [
        (env!("CARGO_BIN_EXE_fig2_paths"), "fig2.txt"),
        (env!("CARGO_BIN_EXE_table1_usecases"), "table1.txt"),
        (env!("CARGO_BIN_EXE_table2_params"), "table2.txt"),
        (env!("CARGO_BIN_EXE_table3_benchmarks"), "table3.txt"),
        (env!("CARGO_BIN_EXE_listing7_herd"), "listing7.txt"),
        (env!("CARGO_BIN_EXE_checker_stress"), "checker_stress.txt"),
        (env!("CARGO_BIN_EXE_conform"), "conform.txt"),
    ] {
        let out = Command::new(exe).output().unwrap_or_else(|e| panic!("run {exe}: {e}"));
        assert!(out.status.success(), "{exe} failed: {}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            committed(artifact),
            "{artifact} drifted from the committed artifact"
        );
    }
}

/// Every committed `results/*.json` artifact is valid JSON-lines: each
/// line parses with the in-tree walker and is an object with the
/// experiment id.
#[test]
fn committed_json_artifacts_parse() {
    let dir = results_dir();
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable artifact");
        for (i, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
            let row = parse_json(line).unwrap_or_else(|e| {
                panic!("{} line {}: {e}", path.display(), i + 1);
            });
            assert!(
                row.get("experiment").is_some(),
                "{} line {}: row lacks an experiment id",
                path.display(),
                i + 1
            );
        }
        checked += 1;
    }
    assert!(checked >= 12, "expected the committed artifact set, found {checked} json files");
}

/// Full sweep: every registered experiment regenerates its committed
/// text and JSON artifacts byte-for-byte.
#[test]
#[ignore = "re-simulates all 12 experiments; run in release"]
fn all_experiments_match_committed_artifacts() {
    for id in ids() {
        assert_experiment_matches(id);
    }
}
