//! Shared program-shape templates: the single source for litmus use-cases
//! and micro workloads.
//!
//! Each family in this module emits [`Program`] threads from a small set of
//! knobs. The *litmus* instantiations (`crates/litmus/usecases.rs` and
//! `mislabeled.rs`) use tiny parameters (one poll, one visit, one section)
//! and `observe` tails so the axiomatic checkers can enumerate them; the
//! *grid* instantiations (`crates/workloads/micro/*`) use full-scale
//! parameters and publish results through stores so the simulator can
//! validate them. Both are lowered through
//! [`ProgramKernel`](crate::ProgramKernel), so an instruction-semantics bug
//! can only live in one place.
//!
//! Two emission styles coexist:
//!
//! * small shapes (counters, queues, seqlock writers) go through
//!   [`ThreadBuilder`] exactly like the original hand-written litmus tests,
//!   guaranteeing instruction-for-instruction identity with the historical
//!   programs (and hence byte-identical `results/conform.txt`);
//! * data-dependent loops (flag polling, seqlock retry) are emitted
//!   *forward* with all loop-exit `JumpIfZero`s patched to the end of the
//!   region. Construction is O(n) in the unrolled length, early exit skips
//!   the whole tail in O(1) at run time, and skipped iterations issue zero
//!   memory operations — matching the hand-coded state machines these
//!   templates replaced, call for call.

use drfrlx_core::program::{BinOp, Expr, Instr, Program, Reg, RmwOp, Thread, ThreadBuilder, Value};
use drfrlx_core::OpClass;

/// Left-fold a non-empty register list with `op`. A single register folds
/// to a bare `Expr::Reg`, matching what the hand-written litmus tests
/// build for degenerate instances.
fn fold_regs(op: BinOp, regs: &[Reg]) -> Expr {
    let mut it = regs.iter();
    let first = *it.next().expect("fold_regs needs at least one register");
    it.fold(Expr::Reg(first), |acc, r| Expr::bin(op, acc, Expr::Reg(*r)))
}

/// Split counter (paper §2: per-CU quantum sub-counters, relaxed reader).
pub mod split_counter {
    use super::*;

    /// Shape knobs shared by the litmus use-case and the `SC` micro.
    pub struct Shape {
        /// Sub-counter location names, in reader sweep order.
        pub counters: Vec<String>,
        /// Increments each updater performs on its own sub-counter.
        pub increments: usize,
        /// Full read sweeps the reader performs (micro: 2; litmus: 1).
        pub sweeps: usize,
        /// Think cycles between sweeps (elided when 0).
        pub think_between_sweeps: u32,
        /// Class of the updater RMWs and reader loads (Quantum when
        /// correctly labelled).
        pub update_class: OpClass,
        /// Class of the reader loads (mislabeled variants diverge here).
        pub read_class: OpClass,
    }

    /// Updater thread: `increments` fetch-adds on one sub-counter.
    pub fn updater(t: &mut ThreadBuilder<'_>, shape: &Shape, counter: &str) {
        for _ in 0..shape.increments {
            t.rmw(shape.update_class, counter, RmwOp::FetchAdd, 1);
        }
    }

    /// Reader thread: `sweeps` sweeps over every sub-counter; the final
    /// sweep's sum is observed (litmus) or stored to `publish` (grid).
    pub fn reader(t: &mut ThreadBuilder<'_>, shape: &Shape, publish: Option<&str>) {
        let mut last_sweep: Vec<Reg> = Vec::new();
        for s in 0..shape.sweeps {
            if s > 0 && shape.think_between_sweeps > 0 {
                t.think(shape.think_between_sweeps);
            }
            last_sweep = shape.counters.iter().map(|c| t.load(shape.read_class, c)).collect();
        }
        let sum = fold_regs(BinOp::Add, &last_sweep);
        match publish {
            Some(out) => {
                t.store(OpClass::Data, out, sum);
            }
            None => {
                t.observe(sum);
            }
        }
    }
}

/// Reference counter (paper §2: quantum inc/dec, commutative mark).
pub mod ref_counter {
    use super::*;

    /// One object a visit touches: `(count_loc, mark_loc, mark_value)`.
    pub struct Obj {
        /// Reference-count location.
        pub count: String,
        /// Mark location stored to when the count drops to zero.
        pub mark: String,
        /// Value written to the mark location.
        pub mark_value: Value,
    }

    /// Shape knobs shared by the litmus use-case and the `RC` micro.
    pub struct Shape {
        /// Class of the inc/dec RMWs (Quantum when correctly labelled).
        pub count_class: OpClass,
        /// Class of the mark store (Commutative when correctly labelled).
        pub mark_class: OpClass,
        /// Think cycles between the incs and the decs (elided when 0).
        pub think: u32,
    }

    /// One visit: increment every object's count, work, then decrement
    /// each and mark it when this thread released the last reference.
    pub fn visit(t: &mut ThreadBuilder<'_>, shape: &Shape, objs: &[Obj]) {
        for o in objs {
            t.rmw(shape.count_class, &o.count, RmwOp::FetchAdd, 1);
        }
        if shape.think > 0 {
            t.think(shape.think);
        }
        for o in objs {
            let old = t.rmw(shape.count_class, &o.count, RmwOp::FetchSub, 1);
            let mark_class = shape.mark_class;
            let mark_value = o.mark_value;
            let mark = o.mark.clone();
            t.if_nz(Expr::bin(BinOp::Eq, old.into(), 1.into()), |t| {
                t.store(mark_class, &mark, mark_value);
            });
        }
    }
}

/// Flag-based termination (paper §2: non-ordering stop flag, commutative
/// dirty flag, paired exit handshake).
pub mod flags {
    use super::*;

    /// How a worker announces its exit.
    pub enum Exit {
        /// `store(class, "exited", 1)` — the litmus shape (one worker).
        Store(OpClass),
        /// `fetch_add(class, "exited", 1)` — the grid shape (many
        /// workers, main joins on the count).
        Fadd(OpClass),
    }

    /// Worker-side knobs.
    pub struct Worker {
        /// Class of the stop-flag polls.
        pub stop_class: OpClass,
        /// Class of the dirty-flag stores.
        pub dirty_class: OpClass,
        /// Maximum poll iterations before giving up.
        pub polls: usize,
        /// Think cycles of work per continuing iteration (elided when 0).
        pub think: u32,
        /// Store the dirty flag every `dirty_every`-th continuing
        /// iteration (0 disables; litmus uses 1, the micro uses 4).
        pub dirty_every: usize,
        /// Whether the final poll, if reached, still guards a work body
        /// (litmus: true — its single poll does work; grid: false — the
        /// poll-cap iteration just exits).
        pub last_poll_works: bool,
        /// Observe the first polled value (the `flags_stop_data`
        /// mislabeling uses the poll result directly).
        pub observe_poll: bool,
        /// Exit announcement.
        pub exit: Exit,
    }

    /// Emit a worker thread. Poll iterations are unrolled forward; every
    /// iteration's `stop != 0` test jumps straight to the exit
    /// announcement, so a stopped worker issues no further memory ops.
    pub fn worker(p: &mut Program, w: &Worker) -> Thread {
        let stop = p.intern("stop");
        let dirty = p.intern("dirty");
        let exited = p.intern("exited");
        let mut ins: Vec<Instr> = Vec::new();
        let mut exits: Vec<usize> = Vec::new();
        // Each polled value dies at its own guard, so every iteration
        // past the first shares one register: the unroll count is
        // bounded by the op stream, not the register file. Only the
        // first poll (observable via `observe_poll`) keeps its own.
        let mut reg = 0u16;
        let mut first_poll = None;
        for i in 0..w.polls {
            let s = Reg(reg.min(1));
            reg = (reg + 1).min(2);
            first_poll.get_or_insert(s);
            ins.push(Instr::Load { class: w.stop_class, loc: stop, dst: s });
            if i + 1 == w.polls && !w.last_poll_works {
                break;
            }
            exits.push(ins.len());
            ins.push(Instr::JumpIfZero {
                cond: Expr::bin(BinOp::Eq, Expr::Reg(s), Expr::Const(0)),
                skip: 0,
            });
            if w.think > 0 {
                ins.push(Instr::Think { cycles: w.think });
            }
            if w.dirty_every != 0 && (i + 1) % w.dirty_every == 0 {
                ins.push(Instr::Store { class: w.dirty_class, loc: dirty, val: Expr::Const(1) });
            }
        }
        let end = ins.len();
        for j in exits {
            let skip = end - j - 1;
            if let Instr::JumpIfZero { skip: s, .. } = &mut ins[j] {
                *s = skip;
            }
        }
        if w.observe_poll {
            let s = first_poll.expect("observe_poll requires at least one poll");
            ins.push(Instr::Observe { expr: Expr::Reg(s) });
        }
        match w.exit {
            Exit::Store(class) => {
                ins.push(Instr::Store { class, loc: exited, val: Expr::Const(1) })
            }
            Exit::Fadd(class) => {
                let dst = Reg(reg);
                ins.push(Instr::Rmw {
                    class,
                    loc: exited,
                    op: RmwOp::FetchAdd,
                    operand: Expr::Const(1),
                    operand2: Expr::Const(0),
                    dst,
                });
            }
        }
        Thread { instrs: ins }
    }

    /// What main does after the join completes.
    pub enum Tail {
        /// Observe the (single) join load — the `flags_stop_data` shape.
        ObserveJoin,
        /// `if joined { observe(load(dirty_class, "dirty")) }` — the
        /// litmus use-case shape.
        GuardedObserveDirty(OpClass),
        /// Unconditionally read the dirty flag and republish `dirty + 10`
        /// as Data — the grid shape (validated by the kernel).
        PublishDirty(OpClass),
    }

    /// Main-side knobs.
    pub struct Main {
        /// Think cycles before raising the stop flag. `Some(0)` still
        /// emits a zero-length think (the micro's op stream does);
        /// `None` elides it (the litmus shape).
        pub delay: Option<u32>,
        /// Class of the stop-flag store.
        pub stop_class: OpClass,
        /// Class of the exited-counter join loads.
        pub exited_class: OpClass,
        /// Maximum join polls (litmus: 1; grid: a bound comfortably above
        /// the worst-case worker runtime, checked by differential test).
        pub join_polls: usize,
        /// Join completes once the exited counter reaches this value.
        pub join_target: Value,
        /// Post-join behaviour.
        pub tail: Tail,
    }

    /// Emit the main thread: optional delay, stop store, join loop
    /// (unrolled forward, early-exit jumps patched to the join's end),
    /// then the tail.
    pub fn main(p: &mut Program, m: &Main) -> Thread {
        let stop = p.intern("stop");
        let dirty = p.intern("dirty");
        let exited = p.intern("exited");
        let mut ins: Vec<Instr> = Vec::new();
        let mut reg = 0u16;
        if let Some(d) = m.delay {
            ins.push(Instr::Think { cycles: d });
        }
        ins.push(Instr::Store { class: m.stop_class, loc: stop, val: Expr::Const(1) });
        let mut joins: Vec<usize> = Vec::new();
        // As in `worker`: join loads die at their guard, so iterations
        // past the first (whose value the `ObserveJoin` and
        // `GuardedObserveDirty` tails read) share one register.
        let first = reg;
        let mut first_join = None;
        for k in 0..m.join_polls {
            let j = Reg(reg.min(first + 1));
            reg = (reg + 1).min(first + 2);
            first_join.get_or_insert(j);
            ins.push(Instr::Load { class: m.exited_class, loc: exited, dst: j });
            if k + 1 == m.join_polls {
                break;
            }
            // Keep polling only while the count is still short.
            joins.push(ins.len());
            ins.push(Instr::JumpIfZero {
                cond: Expr::bin(BinOp::Lt, Expr::Reg(j), Expr::Const(m.join_target)),
                skip: 0,
            });
        }
        let end = ins.len();
        for j in joins {
            let skip = end - j - 1;
            if let Instr::JumpIfZero { skip: s, .. } = &mut ins[j] {
                *s = skip;
            }
        }
        let joined = first_join.expect("join_polls must be at least 1");
        match &m.tail {
            Tail::ObserveJoin => ins.push(Instr::Observe { expr: Expr::Reg(joined) }),
            Tail::GuardedObserveDirty(class) => {
                let d = Reg(reg);
                ins.push(Instr::JumpIfZero { cond: Expr::Reg(joined), skip: 2 });
                ins.push(Instr::Load { class: *class, loc: dirty, dst: d });
                ins.push(Instr::Observe { expr: Expr::Reg(d) });
            }
            Tail::PublishDirty(class) => {
                let d = Reg(reg);
                ins.push(Instr::Load { class: *class, loc: dirty, dst: d });
                ins.push(Instr::Store {
                    class: OpClass::Data,
                    loc: dirty,
                    val: Expr::bin(BinOp::Add, Expr::Reg(d), Expr::Const(10)),
                });
            }
        }
        Thread { instrs: ins }
    }

    /// A bare `store(class, "dirty", value)` thread — the
    /// `flags_conflicting_dirty` mislabeling's whole worker.
    pub fn dirty_only(p: &mut Program, class: OpClass, value: Value) -> Thread {
        let dirty = p.intern("dirty");
        Thread { instrs: vec![Instr::Store { class, loc: dirty, val: Expr::Const(value) }] }
    }
}

/// Seqlock (paper §2: paired lock words, speculative payload reads).
pub mod seqlock {
    use super::*;

    /// Writer-side knobs.
    pub struct Writer {
        /// Guard payload stores with a CAS on the sequence word (the
        /// `seqlock_double_writer` mislabeling drops the lock).
        pub lock: bool,
        /// Class of the acquiring CAS.
        pub lock_class: OpClass,
        /// Class of the releasing sequence store.
        pub unlock_class: OpClass,
        /// Class of the payload stores.
        pub payload_class: OpClass,
        /// Payload location names.
        pub payloads: Vec<String>,
        /// Number of writer sections.
        pub writes: usize,
    }

    /// Emit a writer thread. Each section `w` CASes the sequence word
    /// from `2w` to `2w+1`, stores `value(w, i)` to each payload slot,
    /// and releases with `2w+2`. With a single writer the CAS always
    /// succeeds, so guarding each section on its own CAS result is
    /// behaviourally identical to the retry loop it replaces.
    pub fn writer(
        t: &mut ThreadBuilder<'_>,
        w: &Writer,
        mut value: impl FnMut(usize, usize) -> Value,
    ) {
        for wr in 0..w.writes {
            let seq_even = (2 * wr) as Value;
            if w.lock {
                let old = t.cas(w.lock_class, "seq", seq_even, seq_even + 1);
                let locked = Expr::bin(BinOp::Eq, old.into(), Expr::Const(seq_even));
                let payloads = w.payloads.clone();
                let payload_class = w.payload_class;
                let unlock_class = w.unlock_class;
                let vals: Vec<Value> = (0..payloads.len()).map(|i| value(wr, i)).collect();
                t.if_nz(locked, |t| {
                    for (i, loc) in payloads.iter().enumerate() {
                        t.store(payload_class, loc, vals[i]);
                    }
                    t.store(unlock_class, "seq", seq_even + 2);
                });
            } else {
                for (i, loc) in w.payloads.iter().enumerate() {
                    t.store(w.payload_class, loc, value(wr, i));
                }
            }
        }
    }

    /// What the reader does with a completed snapshot.
    pub enum Tail {
        /// `if ok { observe each payload }` — the litmus use-case.
        ObserveChecked,
        /// Observe the payload regardless (and skip the second sequence
        /// read entirely) — the `seqlock_unconditional_use` mislabeling.
        ObserveUnchecked,
        /// Nothing: the grid micro validates final memory instead.
        None,
    }

    /// Reader-side knobs.
    pub struct Reader {
        /// Class of the opening sequence load.
        pub seq0_class: OpClass,
        /// Class of the closing sequence RMW (`fetch_add 0`).
        pub seq1_class: OpClass,
        /// Class of the payload loads.
        pub payload_class: OpClass,
        /// Payload location names.
        pub payloads: Vec<String>,
        /// Snapshot sections to complete.
        pub reads: usize,
        /// Attempts per section before giving it up.
        pub max_retries: usize,
        /// Tail behaviour.
        pub tail: Tail,
    }

    /// Emit a reader thread.
    ///
    /// An attempt is: load `seq`, load each payload, re-read `seq` with a
    /// `fetch_add 0`, and compute `ok = (seq0 == seq1) && even(seq0)`.
    /// The litmus shape is a single attempt with an observe tail. The
    /// grid shape unrolls `reads * max_retries` attempts — the exact
    /// worst case of the retry loop it replaces — with per-attempt
    /// bookkeeping in registers: `done` counts completed sections,
    /// `retr` counts retries within the current section (a section
    /// force-completes at `max_retries` attempts), and every attempt
    /// after the first is guarded by `done < reads` jumping to the end.
    pub fn reader(p: &mut Program, r: &Reader) -> Thread {
        let seq = p.intern("seq");
        let pls: Vec<_> = r.payloads.iter().map(|l| p.intern(l)).collect();
        let attempts = r.reads * r.max_retries;
        assert!(attempts > 0, "seqlock reader needs at least one attempt");
        let mut ins: Vec<Instr> = Vec::new();
        let mut guards: Vec<usize> = Vec::new();
        let mut reg = 0u16;
        let fresh = |reg: &mut u16| {
            let r = Reg(*reg);
            *reg += 1;
            r
        };
        // One attempt: seq0 load, payload loads, closing `fetch_add 0`
        // (skipped by the unchecked mislabeling), returning the
        // consistency test and the snapshot registers.
        let skip_seq1 = matches!(r.tail, Tail::ObserveUnchecked);
        let attempt = |ins: &mut Vec<Instr>, reg: &mut u16| -> (Expr, Vec<Reg>) {
            let seq0 = fresh(reg);
            ins.push(Instr::Load { class: r.seq0_class, loc: seq, dst: seq0 });
            let vals: Vec<Reg> = pls
                .iter()
                .map(|l| {
                    let v = fresh(reg);
                    ins.push(Instr::Load { class: r.payload_class, loc: *l, dst: v });
                    v
                })
                .collect();
            if skip_seq1 {
                return (Expr::Const(1), vals);
            }
            let seq1 = fresh(reg);
            ins.push(Instr::Rmw {
                class: r.seq1_class,
                loc: seq,
                op: RmwOp::FetchAdd,
                operand: Expr::Const(0),
                operand2: Expr::Const(0),
                dst: seq1,
            });
            let same = Expr::bin(BinOp::Eq, Expr::Reg(seq0), Expr::Reg(seq1));
            let even = Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::And, Expr::Reg(seq0), Expr::Const(1)),
                Expr::Const(0),
            );
            (Expr::bin(BinOp::And, same, even), vals)
        };
        if attempts == 1 && !matches!(r.tail, Tail::None) {
            // Litmus shape: one attempt, the ok test feeds the tail
            // directly — identical to the historical builder output.
            let (ok_expr, vals) = attempt(&mut ins, &mut reg);
            if matches!(r.tail, Tail::ObserveChecked) {
                ins.push(Instr::JumpIfZero { cond: ok_expr, skip: vals.len() });
            }
            for v in &vals {
                ins.push(Instr::Observe { expr: Expr::Reg(*v) });
            }
            return Thread { instrs: ins };
        }
        // Grid shape: unroll every attempt with register bookkeeping.
        // `done`/`retr` from the previous attempt (constants before the
        // first attempt has run).
        let mut done_prev: Option<Reg> = None;
        let mut retr_prev: Option<Reg> = None;
        for _ in 0..attempts {
            let (ok_expr, _vals) = attempt(&mut ins, &mut reg);
            let ok = fresh(&mut reg);
            ins.push(Instr::Assign { dst: ok, expr: ok_expr });
            let retr_e = retr_prev.map_or(Expr::Const(0), Expr::Reg);
            let done_e = done_prev.map_or(Expr::Const(0), Expr::Reg);
            // The section ends when the snapshot was consistent or this
            // was the section's last permitted attempt.
            let sec_end = fresh(&mut reg);
            ins.push(Instr::Assign {
                dst: sec_end,
                expr: Expr::bin(
                    BinOp::Or,
                    Expr::Reg(ok),
                    Expr::bin(BinOp::Eq, retr_e.clone(), Expr::Const((r.max_retries - 1) as Value)),
                ),
            });
            let done = fresh(&mut reg);
            ins.push(Instr::Assign {
                dst: done,
                expr: Expr::bin(BinOp::Add, done_e, Expr::Reg(sec_end)),
            });
            // retr' = (retr + 1) & (sec_end - 1): the mask is all-ones
            // while the section continues and zero when it ends.
            let retr = fresh(&mut reg);
            ins.push(Instr::Assign {
                dst: retr,
                expr: Expr::bin(
                    BinOp::And,
                    Expr::bin(BinOp::Add, retr_e, Expr::Const(1)),
                    Expr::bin(BinOp::Sub, Expr::Reg(sec_end), Expr::Const(1)),
                ),
            });
            done_prev = Some(done);
            retr_prev = Some(retr);
            guards.push(ins.len());
            ins.push(Instr::JumpIfZero {
                cond: Expr::bin(BinOp::Lt, Expr::Reg(done), Expr::Const(r.reads as Value)),
                skip: 0,
            });
        }
        // The trailing guard after the final attempt is dead weight.
        if guards.last() == Some(&(ins.len() - 1)) {
            guards.pop();
            ins.pop();
        }
        let end = ins.len();
        for g in guards {
            let skip = end - g - 1;
            if let Instr::JumpIfZero { skip: s, .. } = &mut ins[g] {
                *s = skip;
            }
        }
        Thread { instrs: ins }
    }
}

/// Histogram (paper §5: scratchpad-privatised vs global-atomic binning).
pub mod hist {
    use super::*;

    /// Deterministic per-value bin assignment shared with the workload's
    /// `expected()` oracle (SplitMix64 over `(seed, block, thread, i)`).
    pub type BinOf = dyn Fn(usize, usize, usize) -> usize;

    /// Grid geometry and class knobs.
    pub struct Shape {
        /// Histogram bins.
        pub bins: usize,
        /// Values each thread processes.
        pub per_thread: usize,
        /// Threads per block (scratch tile is `tpb * bins` words).
        pub tpb: usize,
        /// Class of the global-memory merge RMWs.
        pub merge_class: OpClass,
    }

    /// Scratchpad-privatised thread: count into a private scratch row,
    /// barrier, then merge owned bins (one commutative RMW per non-empty
    /// bin) into global memory.
    pub fn local_thread(
        p: &mut Program,
        s: &Shape,
        block: usize,
        thread: usize,
        bin_of: &BinOf,
    ) -> Thread {
        let mut ins: Vec<Instr> = Vec::new();
        let mut reg = 0u16;
        let gid = |b: usize, t: usize| b * s.tpb + t;
        for i in 0..s.per_thread {
            let input = p.intern(&format!("i{}", gid(block, thread) * s.per_thread + i));
            let v = Reg(reg);
            reg += 1;
            ins.push(Instr::Load { class: OpClass::Data, loc: input, dst: v });
            let bin = bin_of(block, thread, i);
            let slot = (thread * s.bins + bin) as Value;
            let c = Reg(reg);
            reg += 1;
            ins.push(Instr::ScratchLoad { addr: Expr::Const(slot), dst: c });
            ins.push(Instr::ScratchStore {
                addr: Expr::Const(slot),
                val: Expr::bin(BinOp::Add, Expr::Reg(c), Expr::Const(1)),
            });
        }
        ins.push(Instr::Barrier);
        let mut b = thread;
        while b < s.bins {
            let mut parts: Vec<Reg> = Vec::new();
            for t in 0..s.tpb {
                let slot = (t * s.bins + b) as Value;
                let r = Reg(reg);
                reg += 1;
                ins.push(Instr::ScratchLoad { addr: Expr::Const(slot), dst: r });
                parts.push(r);
            }
            let acc = fold_regs(BinOp::Add, &parts);
            let global = p.intern(&format!("b{b}"));
            ins.push(Instr::JumpIfZero { cond: acc.clone(), skip: 1 });
            ins.push(Instr::Rmw {
                class: s.merge_class,
                loc: global,
                op: RmwOp::FetchAdd,
                operand: acc,
                operand2: Expr::Const(0),
                dst: Reg(reg),
            });
            reg += 1;
            b += s.tpb;
        }
        Thread { instrs: ins }
    }

    /// Global-atomic thread: one RMW straight to the global bin per
    /// value (the `HG` family; `update_class` is its only knob).
    pub fn global_thread(
        p: &mut Program,
        s: &Shape,
        block: usize,
        thread: usize,
        update_class: OpClass,
        bin_of: &BinOf,
    ) -> Thread {
        let mut ins: Vec<Instr> = Vec::new();
        let mut reg = 0u16;
        let gid = block * s.tpb + thread;
        for i in 0..s.per_thread {
            let input = p.intern(&format!("i{}", gid * s.per_thread + i));
            let v = Reg(reg);
            reg += 1;
            ins.push(Instr::Load { class: OpClass::Data, loc: input, dst: v });
            let global = p.intern(&format!("b{}", bin_of(block, thread, i)));
            ins.push(Instr::Rmw {
                class: update_class,
                loc: global,
                op: RmwOp::FetchAdd,
                operand: Expr::Const(1),
                operand2: Expr::Const(0),
                dst: Reg(reg),
            });
            reg += 1;
        }
        Thread { instrs: ins }
    }

    /// Read-only non-ordering thread (the `HG-NO` family): a strided
    /// pseudo-random walk of relaxed loads over the bin array.
    pub fn nonorder_thread(
        p: &mut Program,
        bins: usize,
        per_thread: usize,
        gid: usize,
        threads: usize,
    ) -> Thread {
        let mut ins: Vec<Instr> = Vec::new();
        for i in 0..per_thread {
            // Odd multiplier ⇒ bijection on a power-of-two table:
            // spreads logically-adjacent reads across lines and CUs.
            let k = gid as u64 + i as u64 * threads as u64;
            let bin = (k.wrapping_mul(0x9E37_79B1) % bins as u64) as usize;
            let loc = p.intern(&format!("b{bin}"));
            ins.push(Instr::Load { class: OpClass::NonOrdering, loc, dst: Reg(i as u16) });
        }
        Thread { instrs: ins }
    }
}

/// Work queue (paper §2: unpaired occupancy check, paired re-check).
pub mod work_queue {
    use super::*;

    /// How the producer publishes availability.
    pub enum Publish {
        /// `store(class, loc, 1)`.
        Store(OpClass, String),
        /// `fetch_add(class, loc, 1)` — the `unpublished_slot` shape.
        Fadd(OpClass, String),
    }

    /// Producer: store the task payload, then publish.
    pub fn producer(t: &mut ThreadBuilder<'_>, task: &str, task_value: Value, publish: &Publish) {
        t.store(OpClass::Data, task, task_value);
        match publish {
            Publish::Store(class, loc) => {
                t.store(*class, loc, 1);
            }
            Publish::Fadd(class, loc) => {
                t.rmw(*class, loc, RmwOp::FetchAdd, 1);
            }
        }
    }

    /// Consumer: poll one or more occupancy hints (folded with `|`),
    /// optionally re-check a paired flag, then consume the task.
    pub fn consumer(
        t: &mut ThreadBuilder<'_>,
        polls: &[(OpClass, String)],
        recheck: Option<(OpClass, String)>,
        task: &str,
    ) {
        let regs: Vec<Reg> = polls.iter().map(|(c, l)| t.load(*c, l)).collect();
        let any = fold_regs(BinOp::Or, &regs);
        let task = task.to_string();
        t.if_nz(any, |t| match &recheck {
            Some((class, loc)) => {
                let real = t.load(*class, loc);
                let task = task.clone();
                t.if_nz(real, move |t| {
                    let v = t.load(OpClass::Data, &task);
                    t.observe(v);
                });
            }
            None => {
                let v = t.load(OpClass::Data, &task);
                t.observe(v);
            }
        });
    }
}

/// Event counter (paper §2: commutative fetch-adds joined by paired
/// done flags).
pub mod event_counter {
    use super::*;

    /// One contributing worker.
    pub struct Worker {
        /// Class of the counting RMW.
        pub bin_class: OpClass,
        /// The RMW itself (the `noncommuting` mislabeling swaps in
        /// `Exchange`).
        pub op: RmwOp,
        /// Contribution.
        pub amount: Value,
        /// Observe the RMW's old value (the `observed` mislabeling).
        pub observe: bool,
        /// Done-flag store `(class, loc)`; `None` drops the handshake.
        pub done: Option<(OpClass, String)>,
    }

    /// Emit a worker thread onto `t`.
    pub fn worker(t: &mut ThreadBuilder<'_>, w: &Worker) {
        let old = t.rmw(w.bin_class, "bin", w.op, w.amount);
        if w.observe {
            t.observe(old);
        }
        if let Some((class, loc)) = &w.done {
            t.store(*class, loc, 1);
        }
    }

    /// Emit the main thread: load every done flag, fold with `&`, and
    /// read the counter under that guard.
    pub fn main(t: &mut ThreadBuilder<'_>, joins: &[(OpClass, String)], read_class: OpClass) {
        let regs: Vec<Reg> = joins.iter().map(|(c, l)| t.load(*c, l)).collect();
        let both = fold_regs(BinOp::And, &regs);
        t.if_nz(both, |t| {
            let total = t.load(read_class, "bin");
            t.observe(total);
        });
    }
}
