//! # drfrlx-bridge — the single-source program pipeline
//!
//! One IR, every consumer: a [`drfrlx_core::program::Program`] written
//! once can be checked axiomatically, enumerated by the streaming SC
//! checker, parsed/emitted as litmus text, *and* — through this crate —
//! executed on the `hsim-gpu` cycle simulator. The lowering that used
//! to live privately inside the conformance harness
//! (`drfrlx-conform::compile`) is promoted here and generalized from
//! "one single-thread block per litmus thread" to a parametric grid:
//! a `Program` whose threads are laid out block-major over a
//! `blocks × threads_per_block` grid, with an explicit location→address
//! map so kernels can pad locations to cache lines, and support for
//! the full instruction set including the block-level constructs
//! ([`Instr::Think`], [`Instr::Barrier`], [`Instr::ScratchLoad`],
//! [`Instr::ScratchStore`]).
//!
//! Two lowering modes:
//!
//! * [`ProgramKernel::litmus`] — the conformance-harness shape: one
//!   single-thread block per program thread, word `l` holds `Loc(l)`,
//!   every thread dumps its register file into a private observation
//!   window after its body, and every RMW consumes its result
//!   (`use_result: true`) so outcomes are deterministic functions of
//!   the interleaving alone.
//! * [`ProgramKernel::grid`] — the workload shape: threads block-major
//!   over the grid, a caller-supplied name→address layout, no
//!   observation dumps, and `use_result` computed by register liveness
//!   (an RMW whose destination is never read issues fire-and-forget,
//!   exactly like hand-written work items pass `use_result: false`).
//!
//! ## Value domains
//!
//! Litmus values are `i64`, the simulator's are `u64`; all lowering is
//! bit-pattern faithful (`as` casts). Every RMW — including
//! `FetchMin`/`FetchMax`, which both sides order as *signed* two's
//! complement — computes the same bit pattern in both domains, so a
//! compiled program and its axiomatic oracle can never diverge on
//! arithmetic alone.
//!
//! The [`templates`] module holds the shared program templates that
//! both the litmus corpus (scaled down) and the micro workloads
//! (scaled up) instantiate, so the two never hand-duplicate logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod templates;

use drfrlx_core::program::{Expr, Instr, Loc, Program, Reg, RmwOp, Thread};
use drfrlx_core::OpClass;
use hsim_gpu::{Kernel, Op, RmwKind, WorkItem};
use std::sync::Arc;

/// One lowered program thread: its instructions plus everything the
/// interpreter needs that is cheaper to precompute than to rediscover
/// per work item.
#[derive(Debug)]
pub struct ThreadCode {
    /// The thread's instruction sequence (shared, not cloned per item).
    pub instrs: Vec<Instr>,
    /// Dense register-file size (`0..reg_count`).
    pub reg_count: usize,
    /// Per-instruction: does a later instruction read this RMW's
    /// destination? (Only meaningful at `Instr::Rmw` indices.)
    pub use_result: Vec<bool>,
    /// Register-dump window base, when this thread observes its
    /// registers into memory after the body (litmus mode).
    pub obs_base: Option<u64>,
}

/// A [`Program`] lowered onto the simulator grid.
///
/// Implements [`Kernel`]; thread `block * threads_per_block + thread`
/// of the grid runs program thread of the same index, interpreted by
/// [`ProgramItem`].
#[derive(Debug, Clone)]
pub struct ProgramKernel {
    name: String,
    blocks: usize,
    threads_per_block: usize,
    memory_words: usize,
    scratch_words: usize,
    /// Sparse non-zero initial memory (address, value).
    init: Vec<(u64, u64)>,
    /// Location index → word address.
    addr_of: Arc<Vec<u64>>,
    /// Block-major: `cells[block * tpb + thread]`.
    cells: Vec<Arc<ThreadCode>>,
}

impl ProgramKernel {
    /// Lower `p` in the conformance-harness shape: one single-thread
    /// block per program thread, identity location addressing, a
    /// per-thread register-dump window after `num_locs`, RMW results
    /// always consumed.
    ///
    /// A program that uses the block-local facilities —
    /// [`Instr::Barrier`] or the scratch instructions — is placed in
    /// **one block** instead, because the axiomatic enumerator
    /// rendezvouses *all* program threads at a barrier and shares one
    /// scratch space between them; a single block is the grid shape
    /// with the same semantics (the engine's barrier and scratchpad
    /// are per block). Scratch is sized from the largest constant
    /// scratch address in the program.
    ///
    /// # Panics
    ///
    /// Panics if the program has no threads (nothing to simulate), or
    /// if it addresses scratch through a non-constant expression (the
    /// litmus lowering cannot size the scratchpad for those; use
    /// [`ProgramKernel::grid`] with an explicit `scratch_words`).
    pub fn litmus(p: &Program) -> ProgramKernel {
        assert!(!p.threads().is_empty(), "cannot lower a program with no threads");
        let scratch_words = litmus_scratch_words(p);
        let one_block = scratch_words.is_some()
            || p.threads().iter().any(|t| t.instrs.iter().any(|i| matches!(i, Instr::Barrier)));
        let addr_of: Arc<Vec<u64>> = Arc::new((0..p.num_locs() as u64).collect());
        let mut next = p.num_locs() as u64;
        let mut cells = Vec::with_capacity(p.threads().len());
        for t in p.threads() {
            let reg_count = thread_reg_count(t);
            cells.push(Arc::new(ThreadCode {
                instrs: t.instrs.clone(),
                reg_count,
                use_result: vec![true; t.instrs.len()],
                obs_base: Some(next),
            }));
            next += reg_count as u64;
        }
        let init = (0..p.num_locs() as u32)
            .map(Loc)
            .filter(|&l| p.init_value(l) != 0)
            .map(|l| (l.0 as u64, p.init_value(l) as u64))
            .collect();
        let (blocks, threads_per_block) =
            if one_block { (1, p.threads().len()) } else { (p.threads().len(), 1) };
        ProgramKernel {
            name: format!("conform_{}", p.name()),
            blocks,
            threads_per_block,
            memory_words: (next as usize).max(1),
            scratch_words: scratch_words.unwrap_or(0),
            init,
            addr_of,
            cells,
        }
    }

    /// Lower `p` in the workload shape: program thread `i` becomes grid
    /// thread `(i / tpb, i % tpb)`, locations are placed by `addr_of`
    /// (e.g. padded to cache lines), there are no observation dumps,
    /// and each RMW's `use_result` comes from register liveness.
    ///
    /// # Panics
    ///
    /// Panics if the thread count is not `blocks * tpb` for some
    /// `blocks`, or if a location's address falls outside
    /// `memory_words`.
    pub fn grid(
        p: &Program,
        tpb: usize,
        memory_words: usize,
        scratch_words: usize,
        addr_of: impl Fn(&str) -> u64,
    ) -> ProgramKernel {
        let layout: Vec<usize> = (0..p.threads().len()).collect();
        ProgramKernel::grid_with_layout(p, &layout, tpb, memory_words, scratch_words, addr_of)
    }

    /// Like [`ProgramKernel::grid`], but with an explicit replication
    /// layout: grid thread `i` runs program thread `layout[i]`. Grids
    /// that stamp out hundreds of identical bodies (every flags worker,
    /// every seqlock reader) build the program with one thread per
    /// *distinct* body and replicate it here, so the unrolled
    /// instruction stream is materialized exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `layout` is empty or not a multiple of `tpb`, if an
    /// entry indexes past the program's threads, or if a location's
    /// address falls outside `memory_words`.
    pub fn grid_with_layout(
        p: &Program,
        layout: &[usize],
        tpb: usize,
        memory_words: usize,
        scratch_words: usize,
        addr_of: impl Fn(&str) -> u64,
    ) -> ProgramKernel {
        let n = layout.len();
        assert!(n > 0, "cannot lower a program onto an empty grid");
        assert!(tpb > 0 && n.is_multiple_of(tpb), "grid size {n} is not a multiple of tpb {tpb}");
        let addrs: Vec<u64> = (0..p.num_locs() as u32)
            .map(|l| {
                let a = addr_of(p.loc_name(Loc(l)));
                assert!(
                    (a as usize) < memory_words,
                    "location {} at address {a} outside memory ({memory_words} words)",
                    p.loc_name(Loc(l))
                );
                a
            })
            .collect();
        // Lower each program thread once, sharing one ThreadCode per
        // distinct body even when the program itself repeats bodies.
        let mut distinct: Vec<Arc<ThreadCode>> = Vec::new();
        let codes: Vec<Arc<ThreadCode>> = p
            .threads()
            .iter()
            .map(|t| {
                if let Some(c) = distinct.iter().find(|c| c.instrs == t.instrs) {
                    return Arc::clone(c);
                }
                let c = Arc::new(ThreadCode {
                    reg_count: thread_reg_count(t),
                    use_result: rmw_results_used(t),
                    obs_base: None,
                    instrs: t.instrs.clone(),
                });
                distinct.push(Arc::clone(&c));
                c
            })
            .collect();
        let cells = layout
            .iter()
            .map(|&i| {
                assert!(i < codes.len(), "layout entry {i} has no program thread");
                Arc::clone(&codes[i])
            })
            .collect();
        let init = (0..p.num_locs() as u32)
            .map(Loc)
            .filter(|&l| p.init_value(l) != 0)
            .map(|l| (addrs[l.0 as usize], p.init_value(l) as u64))
            .collect();
        ProgramKernel {
            name: p.name().to_string(),
            blocks: n / tpb,
            threads_per_block: tpb,
            memory_words,
            scratch_words,
            init,
            addr_of: Arc::new(addrs),
            cells,
        }
    }

    /// Per-thread dense register-file sizes.
    pub fn reg_counts(&self) -> Vec<usize> {
        self.cells.iter().map(|c| c.reg_count).collect()
    }

    /// Per-thread observation-window bases (litmus mode only).
    pub fn obs_bases(&self) -> Vec<usize> {
        self.cells.iter().filter_map(|c| c.obs_base.map(|b| b as usize)).collect()
    }

    /// Total memory words.
    pub fn memory_words(&self) -> usize {
        self.memory_words
    }

    /// Override the kernel's reported name.
    pub fn named(mut self, name: impl Into<String>) -> ProgramKernel {
        self.name = name.into();
        self
    }
}

impl Kernel for ProgramKernel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn blocks(&self) -> usize {
        self.blocks
    }

    fn threads_per_block(&self) -> usize {
        self.threads_per_block
    }

    fn memory_words(&self) -> usize {
        self.memory_words
    }

    fn scratch_words(&self) -> usize {
        self.scratch_words
    }

    fn init_memory(&self, mem: &mut [u64]) {
        for &(a, v) in &self.init {
            mem[a as usize] = v;
        }
    }

    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        let code = Arc::clone(&self.cells[block * self.threads_per_block + thread]);
        Box::new(ProgramItem::new(code, Arc::clone(&self.addr_of)))
    }
}

/// A work item interpreting one program thread.
///
/// Local computation (assignments, branch markers, structured `if`s) is
/// interpreted inline; memory, scratch, think and barrier instructions
/// are yielded as simulator [`Op`]s. Values delivered back through
/// `last` land in the register recorded in `pending` — the same
/// protocol for global loads, scratch loads and result-consuming RMWs.
pub struct ProgramItem {
    code: Arc<ThreadCode>,
    addr_of: Arc<Vec<u64>>,
    /// Dense register file; `None` = never written (reads as 0, like
    /// the axiomatic enumerator's [`drfrlx_core::program::Expr::eval_slice`]).
    regs: Vec<Option<i64>>,
    pc: usize,
    /// Register awaiting the value delivered as `last`.
    pending: Option<Reg>,
    /// Registers dumped so far in the observation phase.
    dumped: usize,
}

impl ProgramItem {
    /// A fresh item at the top of `code`.
    pub fn new(code: Arc<ThreadCode>, addr_of: Arc<Vec<u64>>) -> ProgramItem {
        let regs = vec![None; code.reg_count];
        ProgramItem { code, addr_of, regs, pc: 0, pending: None, dumped: 0 }
    }
}

impl WorkItem for ProgramItem {
    fn next(&mut self, last: Option<u64>) -> Op {
        if let Some(dst) = self.pending.take() {
            let v = last.expect("memory op with a destination returns a value");
            self.regs[dst.0 as usize] = Some(v as i64);
        }
        while self.pc < self.code.instrs.len() {
            let pc = self.pc;
            self.pc += 1;
            match &self.code.instrs[pc] {
                Instr::Assign { dst, expr } => {
                    self.regs[dst.0 as usize] = Some(expr.eval_slice(&self.regs));
                }
                Instr::BranchOn { .. } | Instr::Observe { .. } => {
                    // Dependency/observability markers: no dynamic
                    // effect, the simulator executes the real path.
                }
                Instr::JumpIfZero { cond, skip } => {
                    if cond.eval_slice(&self.regs) == 0 {
                        self.pc += skip;
                    }
                }
                Instr::Think { cycles } => {
                    return Op::Think(*cycles);
                }
                Instr::Barrier => {
                    return Op::Barrier;
                }
                Instr::ScratchLoad { addr, dst } => {
                    self.pending = Some(*dst);
                    return Op::ScratchLoad { addr: addr.eval_slice(&self.regs) as u64 };
                }
                Instr::ScratchStore { addr, val } => {
                    return Op::ScratchStore {
                        addr: addr.eval_slice(&self.regs) as u64,
                        value: val.eval_slice(&self.regs) as u64,
                    };
                }
                Instr::Load { class, loc, dst } => {
                    self.pending = Some(*dst);
                    return Op::Load { addr: self.addr_of[loc.0 as usize], class: *class };
                }
                Instr::Store { class, loc, val } => {
                    return Op::Store {
                        addr: self.addr_of[loc.0 as usize],
                        value: val.eval_slice(&self.regs) as u64,
                        class: *class,
                    };
                }
                Instr::Rmw { class, loc, op, operand, operand2, dst } => {
                    let k = operand.eval_slice(&self.regs);
                    let k2 = operand2.eval_slice(&self.regs);
                    let use_result = self.code.use_result[pc];
                    if use_result {
                        self.pending = Some(*dst);
                    }
                    return Op::Rmw {
                        addr: self.addr_of[loc.0 as usize],
                        rmw: lower_rmw(*op, k2),
                        operand: k as u64,
                        class: *class,
                        use_result,
                    };
                }
            }
        }
        // Body done. In litmus mode, dump the register file into the
        // observation window, then retire. Plain data stores to
        // thread-private words — racing with nothing, invisible to
        // other threads.
        if let Some(base) = self.code.obs_base {
            if self.dumped < self.regs.len() {
                let r = self.dumped;
                self.dumped += 1;
                return Op::Store {
                    addr: base + r as u64,
                    value: self.regs[r].unwrap_or(0) as u64,
                    class: OpClass::Data,
                };
            }
        }
        Op::Done
    }
}

/// Registers an instruction *reads* (register operands of expressions;
/// destinations are writes, not reads).
fn for_each_read(i: &Instr, f: &mut impl FnMut(Reg)) {
    match i {
        Instr::Load { .. } | Instr::Think { .. } | Instr::Barrier => {}
        Instr::Store { val, .. } => val.for_each_reg(f),
        Instr::Rmw { operand, operand2, .. } => {
            operand.for_each_reg(f);
            operand2.for_each_reg(f);
        }
        Instr::Assign { expr, .. } => expr.for_each_reg(f),
        Instr::BranchOn { cond } | Instr::JumpIfZero { cond, .. } => cond.for_each_reg(f),
        Instr::Observe { expr } => expr.for_each_reg(f),
        Instr::ScratchLoad { addr, .. } => addr.for_each_reg(f),
        Instr::ScratchStore { addr, val } => {
            addr.for_each_reg(f);
            val.for_each_reg(f);
        }
    }
}

/// The register an instruction writes, if any.
fn write_of(i: &Instr) -> Option<Reg> {
    match i {
        Instr::Load { dst, .. }
        | Instr::Rmw { dst, .. }
        | Instr::Assign { dst, .. }
        | Instr::ScratchLoad { dst, .. } => Some(*dst),
        Instr::Store { .. }
        | Instr::BranchOn { .. }
        | Instr::Observe { .. }
        | Instr::JumpIfZero { .. }
        | Instr::Think { .. }
        | Instr::Barrier
        | Instr::ScratchStore { .. } => None,
    }
}

/// Scratchpad size for the litmus lowering: one past the largest
/// constant scratch address, or `None` when the program never touches
/// scratch.
///
/// # Panics
///
/// Panics on a non-constant scratch address — the litmus lowering has
/// no geometry to bound it with.
fn litmus_scratch_words(p: &Program) -> Option<usize> {
    let bound = |e: &Expr| match e {
        Expr::Const(c) if *c >= 0 => *c as usize + 1,
        _ => panic!(
            "litmus lowering of {} requires constant scratch addresses, found {e:?}",
            p.name()
        ),
    };
    let mut words = None;
    for t in p.threads() {
        for i in &t.instrs {
            if let Instr::ScratchLoad { addr, .. } | Instr::ScratchStore { addr, .. } = i {
                words = Some(bound(addr).max(words.unwrap_or(0)));
            }
        }
    }
    words
}

/// Highest register index a thread writes or reads, plus one.
pub fn thread_reg_count(t: &Thread) -> usize {
    let mut max: Option<u16> = None;
    let mut see = |r: Reg| max = Some(max.map_or(r.0, |m: u16| m.max(r.0)));
    for i in &t.instrs {
        for_each_read(i, &mut see);
        if let Some(r) = write_of(i) {
            see(r);
        }
    }
    max.map_or(0, |m| m as usize + 1)
}

/// Per-instruction liveness of RMW results: `true` at index `i` iff a
/// later instruction reads the RMW's destination register. With the
/// builder's fresh-register discipline this is exact; reusing a
/// destination register only ever errs towards `true` (consume the
/// result), never towards dropping a value someone needs.
fn rmw_results_used(t: &Thread) -> Vec<bool> {
    t.instrs
        .iter()
        .enumerate()
        .map(|(i, instr)| match instr {
            Instr::Rmw { dst, .. } => t.instrs[i + 1..].iter().any(|later| {
                let mut read = false;
                for_each_read(later, &mut |r| read |= r == *dst);
                read
            }),
            _ => true,
        })
        .collect()
}

/// Map a litmus RMW to the simulator's (same modify function in both
/// value domains; min/max order signed on both sides).
pub fn lower_rmw(op: RmwOp, expected: i64) -> RmwKind {
    match op {
        RmwOp::FetchAdd => RmwKind::Add,
        RmwOp::FetchSub => RmwKind::Sub,
        RmwOp::FetchAnd => RmwKind::And,
        RmwOp::FetchOr => RmwKind::Or,
        RmwOp::FetchXor => RmwKind::Xor,
        RmwOp::FetchMin => RmwKind::Min,
        RmwOp::FetchMax => RmwKind::Max,
        RmwOp::Exchange => RmwKind::Exchange,
        RmwOp::Cas => RmwKind::Cas { expected: expected as u64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drfrlx_core::program::RmwOp;
    use hsim_gpu::{run_kernel, EngineParams, MemoryBackend};

    /// Zero-latency functional backend for lowering-only tests.
    struct Instant;
    impl MemoryBackend for Instant {
        fn load(&mut self, now: u64, _cu: usize, _a: u64, _at: bool) -> u64 {
            now + 1
        }
        fn store(&mut self, now: u64, _cu: usize, _a: u64, _at: bool) -> u64 {
            now + 1
        }
        fn rmw(&mut self, now: u64, _cu: usize, _a: u64) -> u64 {
            now + 1
        }
        fn acquire(&mut self, now: u64, _cu: usize) -> u64 {
            now
        }
        fn release(&mut self, now: u64, _cu: usize) -> u64 {
            now
        }
    }

    #[test]
    fn grid_lowering_places_locations_and_infers_use_result() {
        // Two threads in one block bump a padded counter; the second
        // thread also reads its own RMW result into a data store.
        let mut p = Program::new("grid");
        {
            let mut t = p.thread();
            t.rmw(OpClass::Commutative, "ctr", RmwOp::FetchAdd, 1);
        }
        {
            let mut t = p.thread();
            let old = t.rmw(OpClass::Commutative, "ctr", RmwOp::FetchAdd, 1);
            t.store(OpClass::Data, "out", old);
        }
        let p = p.build();
        let k = ProgramKernel::grid(&p, 2, 32, 0, |n| match n {
            "ctr" => 16,
            "out" => 17,
            _ => unreachable!(),
        });
        assert_eq!(k.blocks(), 1);
        assert_eq!(k.threads_per_block(), 2);
        // Thread 0's RMW result is dead, thread 1's is live.
        assert!(!k.cells[0].use_result[0]);
        assert!(k.cells[1].use_result[0]);
        let r = run_kernel(&k, &EngineParams::default(), &mut Instant);
        assert_eq!(r.memory[16], 2, "both increments landed at the padded address");
        assert!(r.memory[17] == 0 || r.memory[17] == 1, "old value stored");
    }

    #[test]
    fn block_constructs_lower_to_simulator_ops() {
        // Each of two threads publishes into scratch, meets at the
        // barrier, then thread 0 sums the scratch words into memory.
        let mut p = Program::new("scratch");
        {
            let mut t = p.thread();
            t.scratch_store(0, 7);
            t.think(3);
            t.barrier();
            let a = t.scratch_load(0);
            let b = t.scratch_load(1);
            t.store(
                OpClass::Data,
                "sum",
                drfrlx_core::program::Expr::bin(
                    drfrlx_core::program::BinOp::Add,
                    a.into(),
                    b.into(),
                ),
            );
        }
        {
            let mut t = p.thread();
            t.scratch_store(1, 5);
            t.barrier();
        }
        let p = p.build();
        let k = ProgramKernel::grid(&p, 2, 4, 2, |n| match n {
            "sum" => 0,
            _ => unreachable!(),
        });
        let r = run_kernel(&k, &EngineParams::default(), &mut Instant);
        assert_eq!(r.memory[0], 12, "barrier ordered the scratch publication");
        assert_eq!(r.scratch_accesses, 4);
        assert_eq!(r.barriers, 1);
    }

    #[test]
    fn litmus_lowering_of_block_constructs_uses_one_block() {
        // Same shape as `block_constructs_lower_to_simulator_ops`, but
        // through the litmus lowering: the barrier forces a single
        // block (the enumerator rendezvouses all program threads), and
        // scratch is sized from the largest constant address.
        let mut p = Program::new("scratch");
        {
            let mut t = p.thread();
            t.scratch_store(0, 7);
            t.think(3);
            t.barrier();
            let a = t.scratch_load(0);
            let b = t.scratch_load(1);
            t.store(
                OpClass::Data,
                "sum",
                drfrlx_core::program::Expr::bin(
                    drfrlx_core::program::BinOp::Add,
                    a.into(),
                    b.into(),
                ),
            );
        }
        {
            let mut t = p.thread();
            t.scratch_store(1, 5);
            t.barrier();
        }
        let p = p.build();
        let k = ProgramKernel::litmus(&p);
        assert_eq!(k.blocks(), 1);
        assert_eq!(k.threads_per_block(), 2);
        assert_eq!(k.scratch_words(), 2);
        let r = run_kernel(&k, &EngineParams::default(), &mut Instant);
        assert_eq!(r.memory[0], 12, "barrier ordered the scratch publication");
        assert_eq!(r.barriers, 1);
    }

    #[test]
    fn litmus_lowering_dumps_registers() {
        let mut p = Program::new("t");
        {
            let mut t = p.thread();
            t.store(OpClass::Data, "x", 5);
            let r = t.rmw(OpClass::Commutative, "x", RmwOp::FetchAdd, 2);
            t.observe(r);
        }
        let p = p.build();
        let k = ProgramKernel::litmus(&p);
        assert_eq!(k.reg_counts(), vec![1]);
        assert_eq!(k.obs_bases(), vec![1]);
        let r = run_kernel(&k, &EngineParams::default(), &mut Instant);
        assert_eq!(r.memory[0], 7, "x = 5 then fadd 2");
        assert_eq!(r.memory[1], 5, "RMW returned the old value");
    }
}
