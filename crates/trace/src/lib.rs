//! # hsim-trace — structured event tracing for the simulator
//!
//! The observability layer of the heterogeneous simulator: every
//! `hsim-*` crate is generic over a [`Trace`] capability and emits
//! fixed-size [`TraceEvent`] records at the protocol-event sites the
//! paper reasons about (§6, Table 4) — NoC hops and stalls, cache hits
//! and misses, MSHR coalesces, store-buffer flushes, invalidations,
//! ownership transfers, atomic placement, warp issue and fences.
//!
//! Two implementations exist:
//!
//! * [`NoTrace`] (the default everywhere): `ENABLED = false`, so every
//!   instrumented site compiles to nothing — the untraced simulator is
//!   bit- and speed-identical to one without instrumentation.
//! * [`SharedTracer`]: records into a preallocated [`TraceBuffer`]
//!   ring with complete per-kind totals.
//!
//! Exporters: [`chrome_trace`] (Perfetto / `chrome://tracing`
//! loadable JSON), [`render_profile`] (per-component cycle
//! attribution) and [`render_diff`] (two-run event-kind join, e.g.
//! GD0 vs DD0).
//!
//! ```
//! use hsim_trace::{EventKind, SharedTracer, Trace, TraceEvent};
//!
//! let tracer = SharedTracer::with_capacity(1024);
//! tracer.record(TraceEvent::new(EventKind::L1Miss, 10, 0, 64, 0, 40));
//! let buf = tracer.into_buffer();
//! assert_eq!(buf.totals(EventKind::L1Miss).count, 1);
//! assert!(hsim_trace::chrome_trace(&buf, "demo").contains("l1_miss"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod profile;
mod tracer;

pub use chrome::chrome_trace;
pub use event::{Component, EventKind, TraceEvent, KIND_COUNT};
pub use profile::{render_diff, render_profile};
pub use tracer::{KindTotals, NoTrace, SharedTracer, Trace, TraceBuffer};
