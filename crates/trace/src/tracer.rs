//! The [`Trace`] capability, its enabled/disabled implementations, and
//! the preallocated event ring they record into.
//!
//! The simulator is generic over `T: Trace` with [`NoTrace`] as the
//! default. Every instrumented site is guarded by `if T::ENABLED`, a
//! constant the optimizer resolves per instantiation — the untraced
//! simulator monomorphizes to exactly the code it had before tracing
//! existed, which is what keeps the committed `results/` artifacts (and
//! the perf trajectory) honest.

use crate::event::{EventKind, TraceEvent, KIND_COUNT};
use std::cell::RefCell;
use std::rc::Rc;

/// The tracing capability threaded through the simulator.
///
/// `ENABLED` is an associated *constant* so disabled call sites fold
/// away entirely; `record` takes `&self` so tracers can be shared by
/// every component of one simulation (interior mutability).
pub trait Trace: Clone + std::fmt::Debug {
    /// Does this tracer record anything? Guard instrumentation with
    /// `if T::ENABLED { ... }`.
    const ENABLED: bool;

    /// Record one event.
    fn record(&self, ev: TraceEvent);
}

/// The disabled tracer: zero-sized, records nothing, compiles to
/// nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTrace;

impl Trace for NoTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _ev: TraceEvent) {}
}

/// Per-kind running totals, updated on every record — complete even
/// when the ring has wrapped and dropped old events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindTotals {
    /// Events of this kind recorded.
    pub count: u64,
    /// Sum of their durations.
    pub dur_sum: u64,
    /// Sum of their `arg` payloads.
    pub arg_sum: u64,
}

/// A preallocated keep-newest ring of [`TraceEvent`]s plus complete
/// per-kind totals.
///
/// The ring bounds memory for long runs (oldest events are overwritten
/// once `capacity` is exceeded); the totals always cover the entire
/// run, so profiles and diffs stay exact regardless of ring size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBuffer {
    capacity: usize,
    events: Vec<TraceEvent>,
    /// Write cursor once the ring is full.
    head: usize,
    recorded: u64,
    totals: Vec<KindTotals>,
}

impl TraceBuffer {
    /// An empty buffer keeping at most `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        TraceBuffer {
            capacity,
            events: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
            totals: vec![KindTotals::default(); KIND_COUNT],
        }
    }

    /// Record one event.
    pub fn push(&mut self, ev: TraceEvent) {
        let t = &mut self.totals[ev.kind as usize];
        t.count += 1;
        t.dur_sum += ev.dur as u64;
        t.arg_sum += ev.arg;
        self.recorded += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (≥ [`TraceBuffer::len`]).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events overwritten because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.events.len() as u64
    }

    /// Totals for one kind (complete over the whole run).
    pub fn totals(&self, kind: EventKind) -> KindTotals {
        self.totals[kind as usize]
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events[self.head..].iter().chain(self.events[..self.head].iter())
    }

    /// The last cycle any retained event started at (0 when empty).
    pub fn last_cycle(&self) -> u64 {
        self.events.iter().map(|e| e.cycle).max().unwrap_or(0)
    }
}

/// The enabled tracer: a shared handle onto one [`TraceBuffer`].
///
/// Cloned into every simulator component of a single run
/// (`Rc<RefCell<..>>` — simulations are single-threaded; the sweep
/// engine parallelizes across runs, and each run extracts its buffer
/// with [`SharedTracer::into_buffer`] before crossing threads).
#[derive(Debug, Clone)]
pub struct SharedTracer {
    buf: Rc<RefCell<TraceBuffer>>,
}

impl SharedTracer {
    /// A tracer recording into a fresh ring of `capacity` events.
    pub fn with_capacity(capacity: usize) -> SharedTracer {
        SharedTracer { buf: Rc::new(RefCell::new(TraceBuffer::with_capacity(capacity))) }
    }

    /// Extract the buffer. Cheap (no copy) when this is the last
    /// handle; clones otherwise.
    pub fn into_buffer(self) -> TraceBuffer {
        match Rc::try_unwrap(self.buf) {
            Ok(cell) => cell.into_inner(),
            Err(rc) => rc.borrow().clone(),
        }
    }
}

impl Trace for SharedTracer {
    const ENABLED: bool = true;

    #[inline]
    fn record(&self, ev: TraceEvent) {
        self.buf.borrow_mut().push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, cycle: u64) -> TraceEvent {
        TraceEvent::new(kind, cycle, 0, cycle * 10, 2, 3)
    }

    #[test]
    fn ring_keeps_newest_and_totals_stay_complete() {
        let mut b = TraceBuffer::with_capacity(4);
        for c in 0..10 {
            b.push(ev(EventKind::NocHop, c));
        }
        assert_eq!(b.recorded(), 10);
        assert_eq!(b.len(), 4);
        assert_eq!(b.dropped(), 6);
        let kept: Vec<u64> = b.events().map(|e| e.cycle).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest-first, newest kept");
        let t = b.totals(EventKind::NocHop);
        assert_eq!(t.count, 10, "totals cover dropped events too");
        assert_eq!(t.arg_sum, 20);
        assert_eq!(t.dur_sum, 30);
    }

    #[test]
    fn shared_tracer_routes_to_one_buffer() {
        let t = SharedTracer::with_capacity(16);
        let t2 = t.clone();
        t.record(ev(EventKind::L1Hit, 1));
        t2.record(ev(EventKind::L1Miss, 2));
        drop(t2);
        let buf = t.into_buffer();
        assert_eq!(buf.recorded(), 2);
        assert_eq!(buf.totals(EventKind::L1Hit).count, 1);
        assert_eq!(buf.totals(EventKind::L1Miss).count, 1);
    }

    #[test]
    fn no_trace_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoTrace>(), 0);
        const { assert!(!NoTrace::ENABLED) };
        NoTrace.record(ev(EventKind::Issue, 0)); // no-op, no panic
    }

    #[test]
    fn into_buffer_survives_outstanding_handles() {
        let t = SharedTracer::with_capacity(4);
        let held = t.clone();
        t.record(ev(EventKind::SbFlush, 3));
        let buf = held.clone().into_buffer(); // clones (2 handles live)
        assert_eq!(buf.recorded(), 1);
        drop(held);
        assert_eq!(t.into_buffer().recorded(), 1); // cheap path
    }
}
