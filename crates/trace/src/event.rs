//! The fixed-size structured trace record and its vocabulary.
//!
//! Every instrumented site in the simulator emits one [`TraceEvent`]: a
//! 32-byte `Copy` record carrying the cycle it happened at, an optional
//! duration, the emitting lane (CU, bank or link), the [`EventKind`],
//! and two payload words (address + kind-specific argument). The kind
//! statically determines the owning [`Component`], so events need no
//! separate component tag.

/// The simulator layer an event belongs to. One Chrome-trace "process"
/// per component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Component {
    /// The execution engine (warp issue, barriers, context lifecycle).
    Engine = 0,
    /// Consistency-model enforcement decisions (fences, overlap).
    Model = 1,
    /// Private L1 caches.
    L1 = 2,
    /// L1 miss-status holding registers.
    Mshr = 3,
    /// Store buffers.
    StoreBuffer = 4,
    /// Coherence-protocol actions (invalidations, ownership, atomics).
    Coherence = 5,
    /// The banked NUCA L2.
    L2 = 6,
    /// The mesh network-on-chip.
    Noc = 7,
    /// DRAM.
    Dram = 8,
}

impl Component {
    /// Every component, in `repr` order.
    pub const ALL: [Component; 9] = [
        Component::Engine,
        Component::Model,
        Component::L1,
        Component::Mshr,
        Component::StoreBuffer,
        Component::Coherence,
        Component::L2,
        Component::Noc,
        Component::Dram,
    ];

    /// Stable lower-case name (Chrome-trace process name).
    pub fn name(self) -> &'static str {
        match self {
            Component::Engine => "engine",
            Component::Model => "model",
            Component::L1 => "l1",
            Component::Mshr => "mshr",
            Component::StoreBuffer => "store_buffer",
            Component::Coherence => "coherence",
            Component::L2 => "l2",
            Component::Noc => "noc",
            Component::Dram => "dram",
        }
    }
}

/// What happened. The discriminants index the per-kind totals in
/// [`crate::TraceBuffer`]; keep them dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// An operation issued on a CU port (`arg` = opcode).
    Issue = 0,
    /// An operation waited for its CU issue port (`dur` = wait).
    IssueStall = 1,
    /// A block launched on a CU (`arg` = block id).
    BlockLaunch = 2,
    /// A block barrier released (`arg` = block id).
    BarrierRelease = 3,
    /// A grid-wide barrier released.
    GlobalBarrierRelease = 4,
    /// A context retired (`arg` = context id).
    CtxFinish = 5,
    /// A fence drained outstanding relaxed atomics (`arg` = how many,
    /// `dur` = wait).
    FenceDrain = 6,
    /// A relaxed atomic was overlapped (fire-and-forget; `addr` = word).
    AtomicOverlap = 7,
    /// L1 hit (`addr` = line).
    L1Hit = 8,
    /// L1 miss (`addr` = line).
    L1Miss = 9,
    /// A request merged into an in-flight MSHR entry (`addr` = line).
    MshrCoalesce = 10,
    /// A request stalled on a full MSHR file (`dur` = wait).
    MshrStall = 11,
    /// A store stalled on a full store buffer (`dur` = wait).
    SbStall = 12,
    /// A store-buffer flush (`arg` = entries drained, `dur` = wait).
    SbFlush = 13,
    /// An acquire self-invalidation (`arg` = lines dropped).
    Invalidate = 14,
    /// A line was served by / handed over from a remote L1
    /// (`addr` = line).
    OwnershipTransfer = 15,
    /// An atomic performed at the L1 (DeNovo; `addr` = word).
    AtomicAtL1 = 16,
    /// An atomic performed at the home L2 bank (GPU; `addr` = word).
    AtomicAtL2 = 17,
    /// An atomic hit an already-registered line (reuse; `addr` = word).
    AtomicReuse = 18,
    /// An evicted registered line wrote back to the L2 (`addr` = line).
    Writeback = 19,
    /// An L2 bank access (`dur` = latency; lane = bank).
    L2Access = 20,
    /// One message crossed one mesh link (lane = link index,
    /// `arg` = flits).
    NocHop = 21,
    /// A message queued behind a busy link (`dur` = wait).
    NocStall = 22,
    /// A line filled from DRAM (`addr` = line, `dur` = access time).
    DramRefill = 23,
    /// A writer invalidated remote sharer copies via the directory
    /// (MESI; `addr` = line, `arg` = sharers dropped).
    SharerInvalidate = 24,
}

/// Number of distinct event kinds (totals-array length).
pub const KIND_COUNT: usize = 25;

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::Issue,
        EventKind::IssueStall,
        EventKind::BlockLaunch,
        EventKind::BarrierRelease,
        EventKind::GlobalBarrierRelease,
        EventKind::CtxFinish,
        EventKind::FenceDrain,
        EventKind::AtomicOverlap,
        EventKind::L1Hit,
        EventKind::L1Miss,
        EventKind::MshrCoalesce,
        EventKind::MshrStall,
        EventKind::SbStall,
        EventKind::SbFlush,
        EventKind::Invalidate,
        EventKind::OwnershipTransfer,
        EventKind::AtomicAtL1,
        EventKind::AtomicAtL2,
        EventKind::AtomicReuse,
        EventKind::Writeback,
        EventKind::L2Access,
        EventKind::NocHop,
        EventKind::NocStall,
        EventKind::DramRefill,
        EventKind::SharerInvalidate,
    ];

    /// The component this kind of event belongs to.
    pub fn component(self) -> Component {
        use EventKind::*;
        match self {
            Issue | IssueStall | BlockLaunch | BarrierRelease | GlobalBarrierRelease
            | CtxFinish => Component::Engine,
            FenceDrain | AtomicOverlap => Component::Model,
            L1Hit | L1Miss => Component::L1,
            MshrCoalesce | MshrStall => Component::Mshr,
            SbStall | SbFlush => Component::StoreBuffer,
            Invalidate | OwnershipTransfer | AtomicAtL1 | AtomicAtL2 | AtomicReuse | Writeback
            | SharerInvalidate => Component::Coherence,
            L2Access => Component::L2,
            NocHop | NocStall => Component::Noc,
            DramRefill => Component::Dram,
        }
    }

    /// Stable lower-case name (Chrome-trace event name).
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            Issue => "issue",
            IssueStall => "issue_stall",
            BlockLaunch => "block_launch",
            BarrierRelease => "barrier_release",
            GlobalBarrierRelease => "global_barrier_release",
            CtxFinish => "ctx_finish",
            FenceDrain => "fence_drain",
            AtomicOverlap => "atomic_overlap",
            L1Hit => "l1_hit",
            L1Miss => "l1_miss",
            MshrCoalesce => "mshr_coalesce",
            MshrStall => "mshr_stall",
            SbStall => "sb_stall",
            SbFlush => "sb_flush",
            Invalidate => "invalidate",
            OwnershipTransfer => "ownership_transfer",
            AtomicAtL1 => "atomic_at_l1",
            AtomicAtL2 => "atomic_at_l2",
            AtomicReuse => "atomic_reuse",
            Writeback => "writeback",
            L2Access => "l2_access",
            NocHop => "noc_hop",
            NocStall => "noc_stall",
            DramRefill => "dram_refill",
            SharerInvalidate => "sharer_invalidate",
        }
    }
}

/// One structured trace record (32 bytes, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event started.
    pub cycle: u64,
    /// Word or line address, when meaningful (else 0).
    pub addr: u64,
    /// Kind-specific payload (flits, lines dropped, opcode, ...).
    pub arg: u64,
    /// Duration in cycles (0 for instantaneous events).
    pub dur: u32,
    /// Emitting lane: CU id, L2 bank, or NoC link index.
    pub lane: u16,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Build an event; `dur` saturates into the 32-bit field.
    pub fn new(
        kind: EventKind,
        cycle: u64,
        lane: u16,
        addr: u64,
        arg: u64,
        dur: u64,
    ) -> TraceEvent {
        TraceEvent { cycle, addr, arg, dur: dur.min(u32::MAX as u64) as u32, lane, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_table_is_dense_and_consistent() {
        assert_eq!(EventKind::ALL.len(), KIND_COUNT);
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "{k:?} discriminant out of order");
            assert!(!k.name().is_empty());
        }
        // Every component owns at least one kind.
        for c in Component::ALL {
            assert!(EventKind::ALL.iter().any(|k| k.component() == c), "{c:?} has no event kinds");
        }
    }

    #[test]
    fn events_stay_compact() {
        assert!(std::mem::size_of::<TraceEvent>() <= 32);
        let e = TraceEvent::new(EventKind::NocHop, 5, 3, 0, 4, u64::MAX);
        assert_eq!(e.dur, u32::MAX, "duration saturates");
    }
}
