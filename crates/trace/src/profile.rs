//! Text reports over trace buffers: the per-component cycle-attribution
//! profile and the two-run event-kind diff.
//!
//! Both read only the complete per-kind totals, so they are exact even
//! when the event ring wrapped.

use crate::event::EventKind;
use crate::tracer::TraceBuffer;
use std::fmt::Write as _;

/// Per-component, per-kind cycle-attribution profile of one run.
///
/// `count` is how often the event fired, `cycles` the summed durations
/// (stalls, waits, latencies — the profile's attribution column), and
/// `payload` the summed kind-specific argument (flits, lines dropped,
/// drained entries...).
pub fn render_profile(buf: &TraceBuffer, label: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace profile: {label}");
    let _ = writeln!(
        out,
        "  {:13} {:22} {:>12} {:>14} {:>14}",
        "component", "event", "count", "cycles", "payload"
    );
    for kind in EventKind::ALL {
        let t = buf.totals(kind);
        if t.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:13} {:22} {:>12} {:>14} {:>14}",
            kind.component().name(),
            kind.name(),
            t.count,
            t.dur_sum,
            t.arg_sum
        );
    }
    let _ = writeln!(
        out,
        "  {} events recorded, {} kept in the ring (capacity {}), {} dropped",
        buf.recorded(),
        buf.len(),
        buf.capacity(),
        buf.dropped()
    );
    out
}

/// Join two runs event-kind by event-kind (the Table 4 "why does this
/// config win" report): counts and attributed cycles side by side, with
/// the count delta of `b` relative to `a`.
pub fn render_diff(label_a: &str, a: &TraceBuffer, label_b: &str, b: &TraceBuffer) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace diff: {label_a} vs {label_b}");
    let _ = writeln!(
        out,
        "  {:22} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "event",
        format!("{label_a}#"),
        format!("{label_b}#"),
        "delta#",
        format!("{label_a}cyc"),
        format!("{label_b}cyc")
    );
    for kind in EventKind::ALL {
        let (ta, tb) = (a.totals(kind), b.totals(kind));
        if ta.count == 0 && tb.count == 0 {
            continue;
        }
        let delta = tb.count as i128 - ta.count as i128;
        let _ = writeln!(
            out,
            "  {:22} {:>12} {:>12} {:>+12} {:>14} {:>14}",
            kind.name(),
            ta.count,
            tb.count,
            delta,
            ta.dur_sum,
            tb.dur_sum
        );
    }
    // Payload lines where the counts agree but the work differs — e.g.
    // GD0 and DD0 both invalidate at every acquire, but DeNovo keeps
    // its registered lines, so far fewer lines are actually dropped.
    for kind in [EventKind::Invalidate, EventKind::SbFlush, EventKind::FenceDrain] {
        let (ta, tb) = (a.totals(kind), b.totals(kind));
        if ta.arg_sum == 0 && tb.arg_sum == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:22} {:>12} {:>12} {:>+12}",
            format!("{} payload", kind.name()),
            ta.arg_sum,
            tb.arg_sum,
            tb.arg_sum as i128 - ta.arg_sum as i128
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn buf(kinds: &[(EventKind, u64)]) -> TraceBuffer {
        let mut b = TraceBuffer::with_capacity(64);
        for (i, &(k, arg)) in kinds.iter().enumerate() {
            b.push(TraceEvent::new(k, i as u64, 0, 0, arg, 5));
        }
        b
    }

    #[test]
    fn profile_lists_only_active_kinds() {
        let b = buf(&[(EventKind::L1Hit, 0), (EventKind::L1Hit, 0), (EventKind::SbFlush, 3)]);
        let p = render_profile(&b, "unit");
        assert!(p.contains("trace profile: unit"));
        assert!(p.contains("l1_hit"));
        assert!(p.contains("sb_flush"));
        assert!(!p.contains("noc_hop"), "inactive kinds are omitted");
        assert!(p.contains("3 events recorded"));
    }

    #[test]
    fn diff_shows_count_deltas_and_payloads() {
        let a = buf(&[(EventKind::Invalidate, 10), (EventKind::Invalidate, 10)]);
        let b = buf(&[(EventKind::Invalidate, 1), (EventKind::Invalidate, 1)]);
        let d = render_diff("GD0", &a, "DD0", &b);
        assert!(d.contains("trace diff: GD0 vs DD0"));
        assert!(d.contains("invalidate"));
        assert!(d.contains("+0"), "same event count");
        assert!(d.contains("invalidate payload"));
        assert!(d.contains("-18"), "payload delta 2 - 20");
    }
}
