//! Chrome trace-event JSON export (loadable in Perfetto and
//! `chrome://tracing`).
//!
//! Hand-rolled like `drfrlx-bench::json` so the workspace stays
//! dependency-free. The mapping: one "process" per [`Component`]
//! (named via `"M"` metadata events), one thread lane per CU / L2 bank
//! / NoC link, and one `"X"` (complete) event per retained
//! [`TraceEvent`] with `ts` = start cycle and `dur` in cycles
//! (displayed as microseconds — the timeline is nominal).

use crate::event::Component;
use crate::tracer::TraceBuffer;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render `buf` as a complete Chrome trace-event JSON document.
///
/// `label` describes the run (workload + config) and lands in
/// `otherData` alongside recorded/dropped counts, so a wrapped ring is
/// visible in the viewer rather than silently truncated.
pub fn chrome_trace(buf: &TraceBuffer, label: &str) -> String {
    // ~120 bytes per event row.
    let mut out = String::with_capacity(256 + buf.len() * 120);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
    let _ = write!(
        out,
        "\"label\":\"{}\",\"recorded\":{},\"dropped\":{},\"unit\":\"cycles\"",
        escape(label),
        buf.recorded(),
        buf.dropped()
    );
    out.push_str("},\"traceEvents\":[");
    let mut first = true;
    // Name each process that actually carries events.
    for comp in Component::ALL {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            comp as u8,
            comp.name()
        );
    }
    // A saturated keep-newest ring gets an explicit metadata record,
    // so dropped history is visible inside the trace itself (not just
    // in `otherData`, which some viewers never surface).
    if buf.dropped() > 0 {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"dropped_events\",\
             \"args\":{{\"count\":{},\"policy\":\"keep-newest\"}}}}",
            buf.dropped()
        );
    }
    for ev in buf.events() {
        if !first {
            out.push(',');
        }
        first = false;
        let kind = ev.kind;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"addr\":{},\"arg\":{}}}}}",
            kind.name(),
            kind.component().name(),
            ev.cycle,
            ev.dur,
            kind.component() as u8,
            ev.lane,
            ev.addr,
            ev.arg
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent};

    #[test]
    fn export_contains_metadata_and_events() {
        let mut b = TraceBuffer::with_capacity(8);
        b.push(TraceEvent::new(EventKind::L1Miss, 10, 3, 64, 0, 40));
        b.push(TraceEvent::new(EventKind::NocHop, 12, 5, 0, 4, 3));
        let json = chrome_trace(&b, "HG on GD0");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"l1_miss\""));
        assert!(json.contains("\"name\":\"noc_hop\""));
        assert!(json.contains("\"label\":\"HG on GD0\""));
        assert!(json.contains("\"process_name\""));
        // One metadata event per component, plus the two records.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), Component::ALL.len());
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn a_saturated_ring_carries_a_dropped_events_record() {
        let mut b = TraceBuffer::with_capacity(2);
        for i in 0..5 {
            b.push(TraceEvent::new(EventKind::L1Miss, i, 0, 64, 0, 1));
        }
        assert_eq!(b.dropped(), 3);
        let json = chrome_trace(&b, "wrapped");
        assert!(json.contains("\"name\":\"dropped_events\""));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"policy\":\"keep-newest\""));
        // The extra record is metadata, not a timeline event.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), Component::ALL.len() + 1);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn an_unsaturated_ring_has_no_dropped_events_record() {
        let mut b = TraceBuffer::with_capacity(8);
        b.push(TraceEvent::new(EventKind::L1Miss, 1, 0, 64, 0, 1));
        let json = chrome_trace(&b, "clean");
        assert!(!json.contains("dropped_events"));
    }

    #[test]
    fn labels_are_escaped() {
        let b = TraceBuffer::with_capacity(1);
        let json = chrome_trace(&b, "odd \"label\"\n");
        assert!(json.contains("odd \\\"label\\\"\\n"));
    }
}
