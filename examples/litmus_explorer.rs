//! Explore a litmus test the way the paper's Herd formalization does:
//! enumerate SC executions, print the program/conflict graph, detect
//! illegal races, and compare against the relaxed machine.
//!
//! Run with `cargo run --release --example litmus_explorer [test-name]`.

use drfrlx::litmus::suite::all_tests;
use drfrlx::model::exec::{enumerate_sc, EnumLimits};
use drfrlx::model::pretty::{format_conflict_graph, format_execution};
use drfrlx::model::races::analyze;
use drfrlx::model::syscentric::compare_with_sc;
use drfrlx::MemoryModel;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "figure2a".into());
    let tests = all_tests();
    let Some(test) = tests.iter().find(|t| t.name == name) else {
        eprintln!("unknown test {name}; available:");
        for t in &tests {
            eprintln!("  {}", t.name);
        }
        std::process::exit(1);
    };
    let p = (test.build)();
    let limits = EnumLimits::default();
    let execs = enumerate_sc(&p, &limits).expect("enumerable");
    println!("{name}: {} SC executions", execs.len());

    let racy = execs.iter().find(|e| !analyze(e).is_race_free());
    let shown = racy.unwrap_or_else(|| execs.iter().max_by_key(|e| e.len()).expect("nonempty"));
    println!("\n{} execution:", if racy.is_some() { "racy" } else { "representative" });
    print!("{}", format_execution(&p, shown));
    print!("{}", format_conflict_graph(&p, shown));
    for r in analyze(shown).races() {
        println!("  !! {} between e{} and e{}", r.kind, r.a, r.b);
    }

    match compare_with_sc(&p, MemoryModel::Drfrlx, &limits) {
        Ok(cmp) if cmp.is_sc_only() => {
            println!("\nrelaxed machine: all {} results are SC results", cmp.relaxed_count)
        }
        Ok(cmp) => println!(
            "\nrelaxed machine: {} non-SC memory results reachable",
            cmp.non_sc_results.len()
        ),
        Err(e) => println!("\nrelaxed machine: exploration skipped ({e})"),
    }
}
