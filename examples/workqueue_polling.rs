//! The Work Queue use case (paper Listing 1) end to end: verify the
//! labeling with the model checker, then measure the cost of polling
//! with SC atomics vs unpaired atomics in the UTS benchmark.
//!
//! Run with `cargo run --release --example workqueue_polling`.

use drfrlx::litmus::usecases::work_queue;
use drfrlx::sim::gpu::Kernel;
use drfrlx::sim::{run_workload, SysParams};
use drfrlx::workloads::uts::Uts;
use drfrlx::{check_program, MemoryModel, SystemConfig};

fn main() {
    // The labeling contract: unpaired occupancy polls never order data;
    // the paired re-check does. DRFrlx (and DRF1) accept it.
    let p = work_queue();
    for model in MemoryModel::ALL {
        let r = check_program(&p, model);
        println!("{model}: {:?} ({} SC executions)", r.verdict, r.executions);
    }

    // What the unpaired label buys at scale: UTS polls the queue
    // occupancy continuously; under DRF0 every poll flash-invalidates
    // the L1, under DRF1 it does not.
    let uts = Uts::scaled(1024, 15, 16);
    let params = SysParams::integrated();
    println!("\nUTS (1024-node unbalanced tree), GPU coherence:");
    for cfg in ["GD0", "GD1"] {
        let r = run_workload(&uts, SystemConfig::from_abbrev(cfg).unwrap(), &params);
        uts.validate(&r.memory).expect("every node processed exactly once");
        println!(
            "{cfg}: {:>8} cycles, {:>6} invalidation events, L1 hit rate {:.1}%",
            r.cycles,
            r.proto.invalidation_events,
            100.0 * r.proto.l1_hits as f64 / (r.proto.l1_hits + r.proto.l1_misses) as f64
        );
    }
}
