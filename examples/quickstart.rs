//! Quickstart: check a program against DRFrlx, then measure the same
//! idiom on the simulated CPU-GPU system.
//!
//! Run with `cargo run --release --example quickstart`.

use drfrlx::model::prelude::*;
use drfrlx::sim::gpu::Kernel;
use drfrlx::sim::{run_workload, SysParams};
use drfrlx::workloads::micro::HistGlobal;
use drfrlx::SystemConfig;

fn main() {
    // --- 1. The programmer's half: is my labeling race-free? --------
    // The event-counter idiom (paper Listing 2): two threads bump a
    // shared counter with *commutative* relaxed atomics, the main
    // thread reads it after a paired join.
    let mut p = Program::new("event_counter");
    p.thread().rmw(OpClass::Commutative, "count", RmwOp::FetchAdd, 1);
    p.thread().rmw(OpClass::Commutative, "count", RmwOp::FetchAdd, 2);

    let report = check_program(&p.build(), MemoryModel::Drfrlx);
    println!("checker: {} SC executions, verdict = {:?}", report.executions, report.verdict);
    assert!(report.is_race_free());

    // --- 2. The system's half: what does the labeling buy? ----------
    // The same idiom at benchmark scale (global histogram), on GPU
    // coherence under DRF0 (all atomics SC) vs DRFrlx (overlapped).
    let params = SysParams::integrated();
    let kernel = HistGlobal::default();
    for cfg in ["GD0", "GDR"] {
        let r = run_workload(&kernel, SystemConfig::from_abbrev(cfg).unwrap(), &params);
        kernel.validate(&r.memory).expect("histogram is exact under every model");
        println!("{cfg}: {} cycles, {}", r.cycles, r.energy);
    }
}
