//! Annotation inference: start from conservative SC atomics and let the
//! DRFrlx model discover which may relax — the developer workflow the
//! paper's SC-centric contract enables.
//!
//! Run with `cargo run --release --example annotate`.

use drfrlx::model::emit::emit;
use drfrlx::model::exec::EnumLimits;
use drfrlx::model::infer::infer;
use drfrlx::model::prelude::*;

fn main() {
    // A seqlock written defensively: every atomic is an SC atomic.
    let mut p = Program::new("defensive_seqlock");
    {
        let mut t = p.thread();
        let old = t.cas(OpClass::Paired, "seq", 0, 1);
        let ok = Expr::bin(drfrlx::model::program::BinOp::Eq, old.into(), 0.into());
        t.if_nz(ok, |t| {
            t.store(OpClass::Paired, "data", 10);
            t.store(OpClass::Paired, "seq", 2);
        });
    }
    {
        let mut t = p.thread();
        let seq0 = t.load(OpClass::Paired, "seq");
        let r = t.load(OpClass::Paired, "data");
        let seq1 = t.rmw(OpClass::Paired, "seq", RmwOp::FetchAdd, 0);
        let same = Expr::bin(drfrlx::model::program::BinOp::Eq, seq0.into(), seq1.into());
        let even = Expr::bin(
            drfrlx::model::program::BinOp::Eq,
            Expr::bin(drfrlx::model::program::BinOp::And, seq0.into(), 1.into()),
            0.into(),
        );
        let ok = Expr::bin(drfrlx::model::program::BinOp::And, same, even);
        t.if_nz(ok, |t| {
            t.observe(r);
        });
    }
    let p = p.build();

    let inf = infer(&p, &EnumLimits::default()).expect("enumerable");
    println!("inference found {} relaxation(s):", inf.changes.len());
    for c in &inf.changes {
        println!("  thread {}, instruction {}: {} -> {}", c.tid, c.iid, c.from, c.to);
    }
    println!("\nre-annotated program:\n{}", emit(&inf.program));
    assert!(check_program(&inf.program, MemoryModel::Drfrlx).is_race_free());
    println!("(still DRFrlx race-free — same SC-centric guarantee, cheaper atomics)");
}
