//! Run PageRank on a synthetic contact-network graph under all six
//! protocol x consistency-model configurations and report the paper's
//! headline effect: relaxed atomics pay off most when frequent atomics
//! meet high data reuse.
//!
//! Run with `cargo run --release --example pagerank_showdown`.

use drfrlx::sim::gpu::Kernel;
use drfrlx::sim::{default_threads, run_matrix, six_config_jobs, SysParams};
use drfrlx::workloads::{graphs, pagerank::PageRank};
use std::sync::Arc;

fn main() {
    let graph = graphs::contact_like("demo-contact", 768, 3, 7);
    println!(
        "PageRank on {} ({} vertices, {} edges, max degree {})",
        graph.name,
        graph.verts(),
        graph.num_edges(),
        graph.max_degree()
    );
    let pr = PageRank::new(graph, 2, 15, 16);
    let params = SysParams::integrated();
    let jobs = six_config_jobs("PR", Arc::new(pr.clone()), &params, false);
    let reports = run_matrix(&jobs, default_threads());
    let base = reports[0].cycles as f64;
    println!(
        "{:6} {:>10} {:>8} {:>10} {:>12}",
        "config", "cycles", "norm", "atomics", "overlapped"
    );
    for r in &reports {
        pr.validate(&r.memory).expect("fixed-point ranks match the sequential oracle");
        println!(
            "{:6} {:>10} {:>8.3} {:>10} {:>12}",
            r.config.abbrev(),
            r.cycles,
            r.cycles as f64 / base,
            r.atomics,
            r.atomics_overlapped
        );
    }
    println!("\nAll six runs produced bit-identical PageRank vectors — the");
    println!("commutative labeling relaxes ordering, never atomicity.");
}
