//! The `.litmus` text corpus round-trips through the parser and gets
//! the expected verdict from the checker — the `drfrlx check` CLI path.

use drfrlx::model::checker::{check_program_with, CheckOptions, CheckReport};
use drfrlx::model::exec::Reduction;
use drfrlx::model::parse::parse;
use drfrlx::model::program::Program;
use drfrlx::model::races::RaceKind;
use drfrlx::MemoryModel;

/// Check under the reduction the program needs: the compound
/// `seqlock_counter_stress` defeats sleep sets (20.1M executions) and is
/// enumerable under the default budget only with duplicate-state
/// memoization; everything else stays on the default sleep sets.
fn check(p: &Program, model: MemoryModel) -> CheckReport {
    let reduction = if p.name() == "seqlock_counter_stress" {
        Reduction::SleepSetMemo
    } else {
        Reduction::SleepSet
    };
    let opts = CheckOptions { reduction, ..CheckOptions::default() };
    check_program_with(p, model, &opts)
        .unwrap_or_else(|e| panic!("{} under {model}: {e}", p.name()))
}

fn load(name: &str) -> Program {
    let path = format!("{}/litmus-tests/{name}.litmus", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn corpus_files_parse_and_check() {
    // (file, race-free under [DRF0, DRF1, DRFrlx], expected DRFrlx kind)
    let expectations: &[(&str, [bool; 3], Option<RaceKind>)] = &[
        ("mp_paired", [true, true, true], None),
        ("mp_unpaired", [true, false, false], Some(RaceKind::Data)),
        ("event_counter", [true, true, true], None),
        ("event_counter_observed", [true, true, false], Some(RaceKind::Commutative)),
        ("figure2a", [true, true, false], Some(RaceKind::NonOrdering)),
        ("figure2b", [true, true, true], None),
        ("split_counter", [true, true, true], None),
        ("seqlock", [true, true, true], None),
        ("sb_relaxed", [true, true, false], Some(RaceKind::NonOrdering)),
        ("mp_release_acquire", [true, true, true], None),
        ("sb_release_acquire", [true, true, true], None),
        // 4-thread stress corpus: enumerable under the default budget
        // only because of partial-order reduction.
        ("iriw_stress", [true, true, true], None),
        ("event_counter_stress", [true, true, true], None),
        ("seqlock_stress", [true, true, true], None),
        // Intractable without duplicate-state memoization (see `check`).
        ("seqlock_counter_stress", [true, true, true], None),
    ];
    for (file, race_free, kind) in expectations {
        let p = load(file);
        for (i, model) in MemoryModel::ALL.iter().enumerate() {
            let r = check(&p, *model);
            assert_eq!(
                r.is_race_free(),
                race_free[i],
                "{file} under {model}: {:?}",
                r.race_kinds()
            );
        }
        if let Some(k) = kind {
            let r = check(&p, MemoryModel::Drfrlx);
            assert!(r.has_race_kind(*k), "{file}: expected {k}, got {:?}", r.race_kinds());
        }
    }
}

/// `drfrlx fmt` is a fixpoint: parse → emit → parse → emit yields the
/// same text, and the re-parsed program gets identical verdicts under
/// every model — for every file in the corpus.
#[test]
fn corpus_files_round_trip_through_emit() {
    use drfrlx::model::emit::emit;

    let dir = format!("{}/litmus-tests", env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("litmus-tests directory exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    files.sort();
    assert!(!files.is_empty());
    for path in files {
        let src = std::fs::read_to_string(&path).expect("readable corpus file");
        let p1 = parse(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let text1 = emit(&p1);
        let p2 = parse(&text1)
            .unwrap_or_else(|e| panic!("{}: emitted text does not re-parse: {e}", path.display()));
        let text2 = emit(&p2);
        assert_eq!(text1, text2, "{}: emit is not a fixpoint", path.display());
        for model in MemoryModel::ALL {
            assert_eq!(
                check(&p1, model).is_race_free(),
                check(&p2, model).is_race_free(),
                "{} under {model}: verdict changed across round-trip",
                path.display()
            );
        }
    }
}

#[test]
fn every_corpus_file_is_covered() {
    let dir = format!("{}/litmus-tests", env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .expect("litmus-tests directory exists")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
        .filter(|f| f.ends_with(".litmus"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 15, "update corpus_files_parse_and_check: {files:?}");
}
