//! Cross-layer integration: the litmus corpus (the model's view of each
//! use case) and the simulator workloads (the system's view) must tell
//! one consistent story.

use drfrlx::litmus::suite::{all_tests, Category};
use drfrlx::model::exec::EnumLimits;
use drfrlx::model::syscentric::compare_with_sc;
use drfrlx::sim::gpu::Kernel;
use drfrlx::sim::{run_matrix, six_config_jobs, SysParams};
use drfrlx::workloads::micro::{HistGlobal, HistParams, RefCounter, Seqlocks, SplitCounter};
use drfrlx::{check_program, MemoryModel};
use std::sync::Arc;

/// Every Table 1 use case is DRFrlx race-free, and its benchmark-scale
/// counterpart is functionally correct under the most relaxed config.
#[test]
fn use_cases_are_race_free_and_their_workloads_correct() {
    for t in all_tests().iter().filter(|t| t.category == Category::UseCase) {
        let report = check_program(&(t.build)(), MemoryModel::Drfrlx);
        assert!(report.is_race_free(), "{} must be race-free", t.name);
    }
    let params = SysParams::integrated();
    let kernels: Vec<Arc<dyn Kernel>> = vec![
        Arc::new(HistGlobal::new(
            HistParams { bins: 32, per_thread: 8, blocks: 4, tpb: 4, seed: 8 },
            drfrlx::OpClass::Commutative,
        )),
        Arc::new(SplitCounter::new(4, 4, 8, 1)),
        Arc::new(RefCounter::new(4, 4, 8, 4)),
        Arc::new(Seqlocks::new(false, 4, 4, 2, 3, 3, 32)),
    ];
    for k in &kernels {
        let jobs = six_config_jobs(&k.name(), Arc::clone(k), &params, false);
        for r in run_matrix(&jobs, 1) {
            k.validate(&r.memory)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", k.name(), r.config));
        }
    }
}

/// Theorem 3.1, across the whole corpus: every test the checker calls
/// race-free produces only SC memory results on the relaxed machine.
/// (Scoped to programs without one-sided atomics: release/acquire
/// promise happens-before, not SC — paper §7.)
#[test]
fn theorem_3_1_holds_on_the_corpus() {
    use drfrlx::OpClass;
    let limits = EnumLimits::default();
    for t in all_tests() {
        if !t.race_free[2] || t.sc_only.is_none() {
            continue; // racy tests make no promise; skipped ones are costed out
        }
        let p = (t.build)();
        if p.classes_used().iter().any(|c| matches!(c, OpClass::Acquire | OpClass::Release)) {
            continue;
        }
        let cmp = compare_with_sc(&p, MemoryModel::Drfrlx, &limits)
            .unwrap_or_else(|e| panic!("{}: {e}", t.name));
        assert!(
            cmp.is_sc_only(),
            "{}: race-free program produced non-SC results {:?}",
            t.name,
            cmp.non_sc_results
        );
    }
}

/// Annotation inference recovers the paper's labelings: starting from
/// the all-SC-atomics version of a use case, `infer` finds relaxed
/// annotations, and the result stays race-free and maximal.
#[test]
fn inference_recovers_relaxed_annotations() {
    use drfrlx::model::exec::EnumLimits;
    use drfrlx::model::infer::infer;
    use drfrlx::OpClass;
    let limits = EnumLimits::default();
    for t in all_tests().iter().filter(|t| t.category == Category::UseCase) {
        let p = (t.build)();
        // Conservative version: every atomic becomes paired (quantum
        // stays quantum — inference never proposes it, so upgrading it
        // would lose information the test can't recover).
        let conservative =
            p.map_classes(
                |c| {
                    if c.is_atomic() && c != OpClass::Quantum {
                        OpClass::Paired
                    } else {
                        c
                    }
                },
            );
        let inf = infer(&conservative, &limits).unwrap_or_else(|e| panic!("{}: {e}", t.name));
        assert!(
            check_program(&inf.program, MemoryModel::Drfrlx).is_race_free(),
            "{}: inferred program must stay race-free",
            t.name
        );
        // The paper's own labelings prove relaxations exist for these
        // use cases; inference must find at least one whenever the
        // original used a non-paired, non-quantum class.
        let had_relaxed = p
            .classes_used()
            .iter()
            .any(|c| c.is_relaxed() && *c != OpClass::Quantum || *c == OpClass::Unpaired);
        if had_relaxed {
            assert!(!inf.changes.is_empty(), "{}: expected inference to weaken something", t.name);
        }
    }
}

/// Mislabeled corpus entries are rejected by DRFrlx; the DRF0 view
/// (every atomic upgraded to SC) can only be rejected for a *data*
/// race — and upgrading may legitimately fix data races, because SC
/// atomics order data where relaxed ones do not (DRF1's whole point,
/// e.g. work_queue_no_recheck).
#[test]
fn drf0_view_rejections_are_always_data_races() {
    use drfrlx::model::races::RaceKind;
    for t in all_tests().iter().filter(|t| t.category == Category::Mislabeled) {
        let p = (t.build)();
        let r = check_program(&p, MemoryModel::Drfrlx);
        assert!(!r.is_race_free(), "{}", t.name);
        let drf0 = check_program(&p, MemoryModel::Drf0);
        if !drf0.is_race_free() {
            // Only data races exist in the DRF0 world...
            assert_eq!(drf0.race_kinds(), vec![RaceKind::Data], "{}", t.name);
            // ...and they survive weakening: DRFrlx flags them too.
            assert!(r.has_race_kind(RaceKind::Data), "{}", t.name);
        }
    }
}
