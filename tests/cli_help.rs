//! Satellite: the CLI surface is defined once, in `drfrlx::cli`.
//! These tests pin the three renderings — `--help`, the README table
//! and the unknown-subcommand error — to that single table, so a new
//! subcommand or flag shows up everywhere or the build fails.

use drfrlx::cli::{names, readme_table, unknown, usage, SUBCOMMANDS};

fn readme() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/README.md");
    std::fs::read_to_string(path).expect("README.md readable")
}

#[test]
fn readme_contains_the_generated_subcommand_table() {
    let readme = readme();
    assert!(
        readme.contains(&readme_table()),
        "README.md's subcommand table drifted from drfrlx::cli::readme_table();\n\
         paste this into the `## The drfrlx CLI` section:\n\n{}",
        readme_table()
    );
}

#[test]
fn help_covers_every_subcommand() {
    let u = usage();
    for s in SUBCOMMANDS {
        assert!(u.contains(&format!("drfrlx {}", s.name)), "--help lacks `{}`", s.name);
    }
}

#[test]
fn conform_and_reduction_render_consistently() {
    // The two surfaces this PR series added must appear in all three
    // renderings, not just some.
    let u = usage();
    assert!(u.contains("drfrlx conform"));
    assert!(u.contains("--reduction none|sleep|memo"));
    assert!(u.contains("conform --fuzz N"));
    assert!(readme_table().contains("`drfrlx conform`"));
    assert!(readme().contains("--reduction"));
    assert!(unknown("x").contains("conform"));
}

#[test]
fn unknown_subcommand_error_names_the_full_surface() {
    let e = unknown("frobnicate");
    assert!(e.contains("`frobnicate`"));
    assert_eq!(
        names(),
        SUBCOMMANDS.iter().map(|s| s.name).collect::<Vec<_>>().join(", "),
        "names() must mirror the table order"
    );
    for s in SUBCOMMANDS {
        assert!(e.contains(s.name));
    }
}
