//! A tiny deterministic generator shared by the randomized integration
//! tests. SplitMix64 (Steele et al., "Fast splittable pseudorandom
//! number generators") — 64-bit state, full-period, and small enough
//! that the workspace needs no external RNG crate to stay offline.

/// SplitMix64 PRNG.
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator; the same seed replays the same stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` > 0); bias is negligible
    /// for the tiny bounds used in tests.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
