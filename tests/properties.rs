//! Property-based tests over randomly generated programs and request
//! streams: the DRF guarantee (Theorem 3.1), enumerator soundness,
//! model monotonicity, and substrate invariants.

use drfrlx::model::axiomatic::enumerate_axiomatic;
use drfrlx::model::emit::emit;
use drfrlx::model::exec::{enumerate_sc, EnumLimits};
use drfrlx::model::parse::parse as parse_litmus;
use drfrlx::model::program::{Program, RmwOp};
use drfrlx::model::syscentric::compare_with_sc;
use drfrlx::model::quantum::has_quantum;
use drfrlx::sim::mem::{Cache, CacheParams, LineAddr, StoreBuffer};
use drfrlx::{check_program, MemoryModel, OpClass};
use proptest::prelude::*;

/// One generated memory operation.
#[derive(Debug, Clone)]
enum GenOp {
    Load(OpClass, u8),
    Store(OpClass, u8, i64),
    Add(OpClass, u8, i64),
}

fn class_strategy() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        Just(OpClass::Data),
        Just(OpClass::Paired),
        Just(OpClass::Unpaired),
        Just(OpClass::Commutative),
        Just(OpClass::NonOrdering),
        Just(OpClass::Speculative),
    ]
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    (class_strategy(), 0u8..2, 0i64..2, 0u8..3).prop_map(|(c, loc, v, kind)| match kind {
        0 => GenOp::Load(c, loc),
        1 => GenOp::Store(c, loc, v),
        _ => GenOp::Add(c, loc, v),
    })
}

fn build(threads: &[Vec<GenOp>]) -> Program {
    let mut p = Program::new("generated");
    for ops in threads {
        let mut t = p.thread();
        for op in ops {
            match op {
                GenOp::Load(c, l) => {
                    let r = t.load(*c, &format!("x{l}"));
                    t.observe(r);
                }
                GenOp::Store(c, l, v) => {
                    t.store(*c, &format!("x{l}"), *v);
                }
                GenOp::Add(c, l, v) => {
                    t.rmw(*c, &format!("x{l}"), RmwOp::FetchAdd, *v);
                }
            }
        }
    }
    p.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every enumerated execution is genuinely SC: replaying its total
    /// order yields exactly the recorded values and final memory.
    #[test]
    fn enumerator_only_produces_sc_executions(
        a in prop::collection::vec(op_strategy(), 1..4),
        b in prop::collection::vec(op_strategy(), 1..4),
    ) {
        let p = build(&[a, b]);
        let execs = enumerate_sc(&p, &EnumLimits::default()).expect("enumerable");
        prop_assert!(!execs.is_empty());
        for e in &execs {
            let mut mem = std::collections::BTreeMap::new();
            for &id in &e.order {
                let ev = &e.events[id];
                if ev.access.reads() {
                    let expect = mem.get(&ev.loc).copied().unwrap_or(0);
                    prop_assert_eq!(ev.rval.unwrap(), expect, "load must see last store");
                }
                if ev.access.writes() {
                    mem.insert(ev.loc, ev.wval.unwrap());
                }
            }
            for (loc, v) in &mem {
                prop_assert_eq!(e.result.memory[loc], *v);
            }
        }
    }

    /// Theorem 3.1, fuzzed: a program the checker declares DRFrlx
    /// race-free only produces SC memory results on the relaxed
    /// machine. (Quantum-free programs; quantum's guarantee is stated
    /// against an unbounded random domain.)
    #[test]
    fn race_free_programs_stay_sc_on_the_relaxed_machine(
        a in prop::collection::vec(op_strategy(), 1..4),
        b in prop::collection::vec(op_strategy(), 1..4),
    ) {
        let p = build(&[a, b]);
        prop_assume!(!has_quantum(&p));
        let limits = EnumLimits::default();
        let report = check_program(&p, MemoryModel::Drfrlx);
        if report.is_race_free() {
            let cmp = compare_with_sc(&p, MemoryModel::Drfrlx, &limits).expect("explorable");
            prop_assert!(
                cmp.is_sc_only(),
                "Theorem 3.1 violated: non-SC results {:?} for {:?}",
                cmp.non_sc_results, p
            );
        }
    }

    /// The axiomatic and operational formulations of the system-centric
    /// model agree on every reachable memory result — two independent
    /// implementations of the same relaxed system.
    #[test]
    fn axiomatic_equals_operational(
        a in prop::collection::vec(op_strategy(), 1..4),
        b in prop::collection::vec(op_strategy(), 1..4),
    ) {
        let p = build(&[a, b]);
        for model in MemoryModel::ALL {
            let ax = enumerate_axiomatic(&p, model, 2_000_000).expect("axiomatic enumerable");
            let op = drfrlx::model::syscentric::explore_relaxed(&p, model, &EnumLimits::default())
                .expect("machine enumerable");
            let ax_mem: std::collections::BTreeSet<_> =
                ax.iter().map(|r| r.memory.clone()).collect();
            prop_assert_eq!(&ax_mem, &op.memory_results(), "model {} on {:?}", model, p);
        }
    }

    /// The textual litmus format round-trips: emitting a random program
    /// and re-parsing it preserves executions and checker verdicts.
    #[test]
    fn litmus_text_roundtrips(
        a in prop::collection::vec(op_strategy(), 1..4),
        b in prop::collection::vec(op_strategy(), 1..4),
    ) {
        let p = build(&[a, b]);
        let q = parse_litmus(&emit(&p)).expect("emitted text parses");
        let limits = EnumLimits::default();
        let ea = enumerate_sc(&p, &limits).expect("enumerable");
        let eb = enumerate_sc(&q, &limits).expect("enumerable");
        prop_assert_eq!(ea.len(), eb.len());
        for model in MemoryModel::ALL {
            prop_assert_eq!(
                check_program(&p, model).is_race_free(),
                check_program(&q, model).is_race_free()
            );
        }
    }

    /// Model monotonicity: DRFrlx race-freedom survives upgrading every
    /// atomic to a stronger class (the DRF1 and DRF0 views).
    #[test]
    fn race_freedom_is_monotone_under_upgrading(
        a in prop::collection::vec(op_strategy(), 1..4),
        b in prop::collection::vec(op_strategy(), 1..4),
    ) {
        let p = build(&[a, b]);
        if check_program(&p, MemoryModel::Drfrlx).is_race_free() {
            prop_assert!(check_program(&p, MemoryModel::Drf1).is_race_free());
            prop_assert!(check_program(&p, MemoryModel::Drf0).is_race_free());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The cache array behaves exactly like a reference LRU model.
    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..24, 1..120)) {
        let mut cache: Cache<u8> = Cache::new(CacheParams { sets: 2, ways: 4 });
        let mut reference: Vec<(u64, usize)> = Vec::new(); // (line, last use)
        for (time, &a) in addrs.iter().enumerate() {
            let set = (a % 2) as u64;
            let hit = cache.lookup(LineAddr(a)).is_some();
            let ref_hit = reference.iter().any(|&(l, _)| l == a);
            prop_assert_eq!(hit, ref_hit, "at access {} to {}", time, a);
            if ref_hit {
                reference.retain(|&(l, _)| l != a);
            } else {
                cache.insert(LineAddr(a), 0);
                let in_set: Vec<usize> = reference
                    .iter()
                    .enumerate()
                    .filter(|(_, &(l, _))| l % 2 == set)
                    .map(|(i, _)| i)
                    .collect();
                if in_set.len() >= 4 {
                    // Evict the LRU entry of that set.
                    let victim = *in_set
                        .iter()
                        .min_by_key(|&&i| reference[i].1)
                        .expect("set full");
                    reference.remove(victim);
                }
            }
            reference.push((a, time));
        }
    }

    /// Store buffers never lose a drain deadline: flush completes no
    /// earlier than the latest pending entry.
    #[test]
    fn store_buffer_flush_covers_all_entries(
        drains in prop::collection::vec(1u64..1000, 1..20),
    ) {
        let mut sb = StoreBuffer::new(32);
        let mut max_drain = 0;
        for (i, &d) in drains.iter().enumerate() {
            sb.push(0, LineAddr(i as u64), d);
            max_drain = max_drain.max(d);
        }
        let flushed = sb.flush(0);
        prop_assert!(flushed >= max_drain);
        prop_assert!(sb.is_empty());
    }
}
