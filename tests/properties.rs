//! Randomized property tests over generated programs and request
//! streams: the DRF guarantee (Theorem 3.1), enumerator soundness,
//! model monotonicity, and substrate invariants.
//!
//! Uses the repo-local deterministic generator ([`rng`]) instead of an
//! external property-testing crate so the whole workspace builds with
//! zero network dependencies (see README "Offline builds"). Every case
//! is derived from a fixed seed, so failures reproduce bit-for-bit.

mod rng;

use drfrlx::model::axiomatic::enumerate_axiomatic;
use drfrlx::model::emit::emit;
use drfrlx::model::exec::{enumerate_sc, EnumLimits};
use drfrlx::model::parse::parse as parse_litmus;
use drfrlx::model::program::{Program, RmwOp};
use drfrlx::model::quantum::has_quantum;
use drfrlx::model::syscentric::compare_with_sc;
use drfrlx::sim::mem::{Cache, CacheParams, LineAddr, StoreBuffer};
use drfrlx::{check_program, MemoryModel, OpClass};
use rng::SplitMix64;

/// One generated memory operation.
#[derive(Debug, Clone)]
enum GenOp {
    Load(OpClass, u8),
    Store(OpClass, u8, i64),
    Add(OpClass, u8, i64),
}

const CLASSES: [OpClass; 6] = [
    OpClass::Data,
    OpClass::Paired,
    OpClass::Unpaired,
    OpClass::Commutative,
    OpClass::NonOrdering,
    OpClass::Speculative,
];

fn gen_op(r: &mut SplitMix64) -> GenOp {
    let class = CLASSES[r.below(CLASSES.len() as u64) as usize];
    let loc = r.below(2) as u8;
    let v = r.below(2) as i64;
    match r.below(3) {
        0 => GenOp::Load(class, loc),
        1 => GenOp::Store(class, loc, v),
        _ => GenOp::Add(class, loc, v),
    }
}

/// A random thread body of 1..4 operations.
fn gen_thread(r: &mut SplitMix64) -> Vec<GenOp> {
    let n = 1 + r.below(3) as usize;
    (0..n).map(|_| gen_op(r)).collect()
}

fn build(threads: &[Vec<GenOp>]) -> Program {
    let mut p = Program::new("generated");
    for ops in threads {
        let mut t = p.thread();
        for op in ops {
            match op {
                GenOp::Load(c, l) => {
                    let r = t.load(*c, &format!("x{l}"));
                    t.observe(r);
                }
                GenOp::Store(c, l, v) => {
                    t.store(*c, &format!("x{l}"), *v);
                }
                GenOp::Add(c, l, v) => {
                    t.rmw(*c, &format!("x{l}"), RmwOp::FetchAdd, *v);
                }
            }
        }
    }
    p.build()
}

/// Run `cases` generated two-thread programs through `f`.
fn for_each_program(seed: u64, cases: usize, mut f: impl FnMut(&Program)) {
    let mut r = SplitMix64::new(seed);
    for case in 0..cases {
        let a = gen_thread(&mut r);
        let b = gen_thread(&mut r);
        let p = build(&[a.clone(), b.clone()]);
        let guard = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&p)));
        if let Err(e) = guard {
            eprintln!("failing case {case}: {a:?} / {b:?}");
            std::panic::resume_unwind(e);
        }
    }
}

/// Every enumerated execution is genuinely SC: replaying its total
/// order yields exactly the recorded values and final memory.
#[test]
fn enumerator_only_produces_sc_executions() {
    for_each_program(0xD5F0_0001, 64, |p| {
        let execs = enumerate_sc(p, &EnumLimits::default()).expect("enumerable");
        assert!(!execs.is_empty());
        for e in &execs {
            let mut mem = std::collections::BTreeMap::new();
            for &id in &e.order {
                let ev = &e.events[id];
                if ev.access.reads() {
                    let expect = mem.get(&ev.loc).copied().unwrap_or(0);
                    assert_eq!(ev.rval.unwrap(), expect, "load must see last store");
                }
                if ev.access.writes() {
                    mem.insert(ev.loc, ev.wval.unwrap());
                }
            }
            for (loc, v) in &mem {
                assert_eq!(e.result.memory[loc], *v);
            }
        }
    });
}

/// Theorem 3.1, fuzzed: a program the checker declares DRFrlx
/// race-free only produces SC memory results on the relaxed machine.
/// (Quantum-free programs; quantum's guarantee is stated against an
/// unbounded random domain.)
#[test]
fn race_free_programs_stay_sc_on_the_relaxed_machine() {
    for_each_program(0xD5F0_0002, 64, |p| {
        if has_quantum(p) {
            return;
        }
        let limits = EnumLimits::default();
        let report = check_program(p, MemoryModel::Drfrlx);
        if report.is_race_free() {
            let cmp = compare_with_sc(p, MemoryModel::Drfrlx, &limits).expect("explorable");
            assert!(
                cmp.is_sc_only(),
                "Theorem 3.1 violated: non-SC results {:?} for {:?}",
                cmp.non_sc_results,
                p
            );
        }
    });
}

/// The axiomatic and operational formulations of the system-centric
/// model agree on every reachable memory result — two independent
/// implementations of the same relaxed system.
#[test]
fn axiomatic_equals_operational() {
    for_each_program(0xD5F0_0003, 64, |p| {
        for model in MemoryModel::ALL {
            let ax = enumerate_axiomatic(p, model, 2_000_000).expect("axiomatic enumerable");
            let op = drfrlx::model::syscentric::explore_relaxed(p, model, &EnumLimits::default())
                .expect("machine enumerable");
            let ax_mem: std::collections::BTreeSet<_> =
                ax.iter().map(|r| r.memory.clone()).collect();
            assert_eq!(ax_mem, op.memory_results(), "model {model} on {p:?}");
        }
    });
}

/// The textual litmus format round-trips: emitting a random program
/// and re-parsing it preserves executions and checker verdicts.
#[test]
fn litmus_text_roundtrips() {
    for_each_program(0xD5F0_0004, 64, |p| {
        let q = parse_litmus(&emit(p)).expect("emitted text parses");
        let limits = EnumLimits::default();
        let ea = enumerate_sc(p, &limits).expect("enumerable");
        let eb = enumerate_sc(&q, &limits).expect("enumerable");
        assert_eq!(ea.len(), eb.len());
        for model in MemoryModel::ALL {
            assert_eq!(
                check_program(p, model).is_race_free(),
                check_program(&q, model).is_race_free()
            );
        }
    });
}

/// Model monotonicity: DRFrlx race-freedom survives upgrading every
/// atomic to a stronger class (the DRF1 and DRF0 views).
#[test]
fn race_freedom_is_monotone_under_upgrading() {
    for_each_program(0xD5F0_0005, 64, |p| {
        if check_program(p, MemoryModel::Drfrlx).is_race_free() {
            assert!(check_program(p, MemoryModel::Drf1).is_race_free());
            assert!(check_program(p, MemoryModel::Drf0).is_race_free());
        }
    });
}

/// The cache array behaves exactly like a reference LRU model.
#[test]
fn cache_matches_reference_lru() {
    let mut r = SplitMix64::new(0xD5F0_0006);
    for _case in 0..128 {
        let len = 1 + r.below(119) as usize;
        let addrs: Vec<u64> = (0..len).map(|_| r.below(24)).collect();
        let mut cache: Cache<u8> = Cache::new(CacheParams { sets: 2, ways: 4 });
        let mut reference: Vec<(u64, usize)> = Vec::new(); // (line, last use)
        for (time, &a) in addrs.iter().enumerate() {
            let set = a % 2;
            let hit = cache.lookup(LineAddr(a)).is_some();
            let ref_hit = reference.iter().any(|&(l, _)| l == a);
            assert_eq!(hit, ref_hit, "at access {time} to {a} in {addrs:?}");
            if ref_hit {
                reference.retain(|&(l, _)| l != a);
            } else {
                cache.insert(LineAddr(a), 0);
                let in_set: Vec<usize> = reference
                    .iter()
                    .enumerate()
                    .filter(|(_, &(l, _))| l % 2 == set)
                    .map(|(i, _)| i)
                    .collect();
                if in_set.len() >= 4 {
                    // Evict the LRU entry of that set.
                    let victim = *in_set.iter().min_by_key(|&&i| reference[i].1).expect("set full");
                    reference.remove(victim);
                }
            }
            reference.push((a, time));
        }
    }
}

/// Store buffers never lose a drain deadline: flush completes no
/// earlier than the latest pending entry.
#[test]
fn store_buffer_flush_covers_all_entries() {
    let mut r = SplitMix64::new(0xD5F0_0007);
    for _case in 0..128 {
        let len = 1 + r.below(19) as usize;
        let drains: Vec<u64> = (0..len).map(|_| 1 + r.below(999)).collect();
        let mut sb = StoreBuffer::new(32);
        let mut max_drain = 0;
        for (i, &d) in drains.iter().enumerate() {
            sb.push(0, LineAddr(i as u64), d);
            max_drain = max_drain.max(d);
        }
        let flushed = sb.flush(0);
        assert!(flushed >= max_drain, "flush {flushed} < {max_drain} for {drains:?}");
        assert!(sb.is_empty());
    }
}
