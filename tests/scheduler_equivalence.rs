//! Differential property test for the GPU engine's indexed scheduler.
//!
//! The engine's ready queue was rewritten from an O(contexts) linear
//! scan to a binary heap keyed `(ready cycle, context id)`; the linear
//! scanner is retained as [`run_kernel_reference`]. Both must agree on
//! *everything* — cycle counts, op counts, barrier counts and the final
//! memory image — for any kernel, because the heap is supposed to be a
//! pure data-structure swap, not a schedule change. This test holds it
//! to that on randomly generated kernels.
//!
//! Uses the repo-local deterministic generator ([`rng`]) instead of an
//! external property-testing crate so the whole workspace builds with
//! zero network dependencies. Every case is derived from a fixed seed,
//! so failures reproduce bit-for-bit.

mod rng;

use drfrlx::sim::gpu::{
    run_kernel, run_kernel_reference, Addr, Cycle, EngineParams, Kernel, MemoryBackend, Op,
    RmwKind, Value, WorkItem,
};
use drfrlx::{MemoryModel, OpClass};
use rng::SplitMix64;

/// Deterministic backend whose latencies vary by address and a per-run
/// seed, so the two schedulers are compared under non-uniform (but
/// replayable) memory timing, not just fixed latencies.
struct VariedLat {
    salt: u64,
}

impl VariedLat {
    fn lat(&self, addr: Addr, base: u64, spread: u64) -> u64 {
        base + (addr.wrapping_mul(0x9E37_79B9).wrapping_add(self.salt) % spread)
    }
}

impl MemoryBackend for VariedLat {
    fn load(&mut self, now: Cycle, _cu: usize, addr: Addr, atomic: bool) -> Cycle {
        now + self.lat(addr, if atomic { 40 } else { 8 }, 17)
    }
    fn store(&mut self, now: Cycle, _cu: usize, addr: Addr, atomic: bool) -> Cycle {
        now + self.lat(addr, if atomic { 40 } else { 2 }, 13)
    }
    fn rmw(&mut self, now: Cycle, _cu: usize, addr: Addr) -> Cycle {
        now + self.lat(addr, 45, 11)
    }
    fn acquire(&mut self, now: Cycle, _cu: usize) -> Cycle {
        now + 2
    }
    fn release(&mut self, now: Cycle, _cu: usize) -> Cycle {
        now + 15
    }
}

const CLASSES: [OpClass; 9] = [
    OpClass::Data,
    OpClass::Paired,
    OpClass::Unpaired,
    OpClass::Commutative,
    OpClass::NonOrdering,
    OpClass::Quantum,
    OpClass::Speculative,
    OpClass::Acquire,
    OpClass::Release,
];

const MEM_WORDS: usize = 16;
const SCRATCH_WORDS: usize = 4;

/// A kernel that replays pre-generated op tapes: `tapes[block][thread]`
/// is the exact op sequence that `(block, thread)` will emit.
struct TapeKernel {
    blocks: usize,
    tpb: usize,
    tapes: Vec<Vec<Vec<Op>>>,
}

struct TapeItem {
    tape: Vec<Op>,
    pc: usize,
}

impl WorkItem for TapeItem {
    fn next(&mut self, _last: Option<Value>) -> Op {
        let op = self.tape.get(self.pc).copied().unwrap_or(Op::Done);
        self.pc += 1;
        op
    }
}

impl Kernel for TapeKernel {
    fn name(&self) -> String {
        "tape".into()
    }
    fn blocks(&self) -> usize {
        self.blocks
    }
    fn threads_per_block(&self) -> usize {
        self.tpb
    }
    fn memory_words(&self) -> usize {
        MEM_WORDS
    }
    fn scratch_words(&self) -> usize {
        SCRATCH_WORDS
    }
    fn item(&self, block: usize, thread: usize) -> Box<dyn WorkItem> {
        Box::new(TapeItem { tape: self.tapes[block][thread].clone(), pc: 0 })
    }
}

/// One random non-barrier op.
fn random_op(r: &mut SplitMix64) -> Op {
    let class = CLASSES[r.below(CLASSES.len() as u64) as usize];
    let addr = r.below(MEM_WORDS as u64);
    match r.below(6) {
        0 => Op::Think(r.below(5) as u32),
        1 => Op::ScratchLoad { addr: r.below(SCRATCH_WORDS as u64) },
        2 => Op::ScratchStore { addr: r.below(SCRATCH_WORDS as u64), value: r.below(100) },
        3 => Op::Load { addr, class },
        4 => Op::Store { addr, value: r.below(100), class },
        _ => Op::Rmw {
            addr,
            rmw: RmwKind::Add,
            operand: r.below(8),
            class,
            use_result: r.below(2) == 0,
        },
    }
}

/// Generate one random kernel. The grid shares a segment skeleton —
/// between segments every thread emits the same separator (a block
/// barrier, or a grid barrier when every block is resident) — so the
/// generated kernels never deadlock; within a segment each thread's
/// ops are independent.
fn random_kernel(r: &mut SplitMix64, all_resident: bool) -> TapeKernel {
    let blocks = 1 + r.below(5) as usize;
    let tpb = 1 + r.below(6) as usize;
    let segments = 1 + r.below(3) as usize;
    let separators: Vec<Op> = (1..segments)
        .map(|_| if all_resident && r.below(3) == 0 { Op::GlobalBarrier } else { Op::Barrier })
        .collect();
    let tapes = (0..blocks)
        .map(|_| {
            (0..tpb)
                .map(|_| {
                    let mut tape = Vec::new();
                    for sep in separators.iter().map(Some).chain(std::iter::once(None)) {
                        for _ in 0..r.below(6) {
                            tape.push(random_op(r));
                        }
                        if let Some(&sep) = sep {
                            tape.push(sep);
                        }
                    }
                    tape
                })
                .collect()
        })
        .collect();
    TapeKernel { blocks, tpb, tapes }
}

#[test]
fn heap_scheduler_matches_linear_scan_reference() {
    let mut r = SplitMix64::new(0xD1FF_5C4E_D011);
    for case in 0..60u64 {
        let model = MemoryModel::ALL[(case % 3) as usize];
        // Alternate between grids that overflow CU residency (blocks
        // queue and relaunch) and fully resident grids (which may also
        // use grid barriers).
        let all_resident = case % 2 == 0;
        let kernel = random_kernel(&mut r, all_resident);
        let params = EngineParams {
            num_cus: 1 + r.below(3) as usize,
            max_contexts_per_cu: if all_resident {
                // Enough room that every block is resident at launch.
                kernel.tpb * kernel.blocks
            } else {
                kernel.tpb * (1 + r.below(2) as usize)
            },
            model,
            barrier_latency: 1 + r.below(8),
            global_barrier_latency: 100 + r.below(500),
            max_outstanding_atomics: 1 + r.below(8) as usize,
            jitter: None,
        };
        let salt = r.next_u64();
        let heap = run_kernel(&kernel, &params, &mut VariedLat { salt });
        let reference = run_kernel_reference(&kernel, &params, &mut VariedLat { salt });
        assert_eq!(
            heap, reference,
            "case {case}: heap and linear-scan schedulers diverged \
             (model {model}, {} blocks x {} tpb)",
            kernel.blocks, kernel.tpb
        );
    }
}
