//! Satellite: CI-friendly exit codes. `drfrlx check`/`conform` exit
//! 0 when clean, 2 on a real finding (race / soundness violation), 3
//! when a run ends without a verdict (budget exhausted, degraded) and
//! 101 on an internal error — so CI can tell "the program is racy"
//! from "the checker fell over". Also exercises the checkpoint/resume
//! round trip through the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn drfrlx(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_drfrlx")).args(args).output().expect("binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Write a litmus source into a per-test scratch dir, returning its path.
fn litmus_file(name: &str, src: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drfrlx_exit_codes_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(name);
    std::fs::write(&path, src).expect("litmus file written");
    path
}

const RACE_FREE: &str = "litmus quiet\n\nthread t0 {\n    store.data x 1;\n}\n";

const RACY: &str = "litmus noisy\n\n\
    thread t0 {\n    store.data x 1;\n}\n\n\
    thread t1 {\n    store.data x 2;\n}\n";

/// Race-free (paired atomics never race) but every store conflicts,
/// so sleep sets prune nothing: 1680 interleavings dwarf any small
/// --max-execs budget, the verdict needs the whole tree, and the
/// sharded resilient runner has real work to checkpoint.
const WIDE: &str = "litmus wide\n\n\
    thread t0 {\n    store.paired x 1;\n    store.paired x 2;\n    store.paired x 3;\n}\n\n\
    thread t1 {\n    store.paired x 4;\n    store.paired x 5;\n    store.paired x 6;\n}\n\n\
    thread t2 {\n    store.paired x 7;\n    store.paired x 8;\n    store.paired x 9;\n}\n";

#[test]
fn check_exits_0_on_race_free_and_2_on_racy() {
    let clean = litmus_file("quiet.litmus", RACE_FREE);
    assert_eq!(code(&drfrlx(&["check", clean.to_str().unwrap()])), 0);

    let racy = litmus_file("noisy.litmus", RACY);
    let out = drfrlx(&["check", racy.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "a data race is a finding: {}", stdout(&out));
}

#[test]
fn check_exits_3_when_the_execution_budget_runs_out() {
    let wide = litmus_file("wide3.litmus", WIDE);
    let out = drfrlx(&["check", wide.to_str().unwrap(), "--max-execs", "10", "--model", "drf0"]);
    // 10 of 1680 executions seen, all race-free: no verdict.
    assert_eq!(code(&out), 3, "{}\n{}", stdout(&out), String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("INCONCLUSIVE"), "{}", stdout(&out));
}

#[test]
fn usage_errors_exit_2_and_internal_errors_exit_101() {
    assert_eq!(code(&drfrlx(&["frobnicate"])), 2, "unknown subcommand");
    // A missing file is an error inside a verdict subcommand: 101,
    // distinguishable from the racy exit 2.
    assert_eq!(code(&drfrlx(&["check", "/no/such/file.litmus"])), 101);
    assert_eq!(code(&drfrlx(&["conform", "--fuzz", "0"])), 101);
}

#[test]
fn check_checkpoint_resume_round_trips_byte_for_byte() {
    let wide = litmus_file("wide_resume.litmus", WIDE);
    let path = wide.to_str().unwrap();
    let ckpt = wide.with_file_name("wide.ckpt.json");
    let ckpt = ckpt.to_str().unwrap();

    // Uninterrupted resilient run (checkpoint flag engages the same
    // code path the resumed run takes).
    let full = drfrlx(&["check", path, "--model", "drfrlx", "--checkpoint", ckpt]);
    assert_eq!(code(&full), 0, "the wide program is race-free");

    // Leg 1: a tight budget interrupts mid-plan; no verdict yet.
    let leg1 =
        drfrlx(&["check", path, "--model", "drfrlx", "--max-execs", "600", "--checkpoint", ckpt]);
    assert_eq!(code(&leg1), 3, "interrupted without a verdict");
    assert!(stdout(&leg1).contains("status:"), "{}", stdout(&leg1));

    // Leg 2: resume with the full budget reproduces the uninterrupted
    // stdout exactly.
    let leg2 = drfrlx(&["check", path, "--model", "drfrlx", "--resume", ckpt]);
    assert_eq!(code(&leg2), 0);
    assert_eq!(stdout(&leg2), stdout(&full), "resumed == uninterrupted");
}

#[test]
fn resume_rejects_a_checkpoint_from_different_options() {
    let wide = litmus_file("wide_reject.litmus", WIDE);
    let path = wide.to_str().unwrap();
    let ckpt = wide.with_file_name("wide_reject.ckpt.json");
    let ckpt = ckpt.to_str().unwrap();
    assert_eq!(code(&drfrlx(&["check", path, "--model", "drfrlx", "--checkpoint", ckpt])), 0);
    let out = drfrlx(&["check", path, "--model", "drf0", "--resume", ckpt]);
    assert_eq!(code(&out), 101, "fingerprint mismatch is an error, not a silent merge");
    assert!(String::from_utf8_lossy(&out.stderr).contains("fingerprint"));
}

#[test]
fn conform_fuzz_exits_0_and_checkpoints_round_trip() {
    let dir = std::env::temp_dir().join(format!("drfrlx_exit_codes_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ckpt = dir.join("fuzz.ckpt.json");
    let ckpt = ckpt.to_str().unwrap();

    let run = drfrlx(&[
        "conform",
        "--fuzz",
        "2",
        "--seed",
        "1",
        "--schedules",
        "2",
        "--checkpoint",
        ckpt,
    ]);
    assert_eq!(code(&run), 0, "{}", String::from_utf8_lossy(&run.stderr));
    let summary = stdout(&run);
    assert!(summary.contains("2 programs from seed 1"), "{summary}");

    // Resuming a finished campaign reprints the same summary, clean.
    let resumed =
        drfrlx(&["conform", "--fuzz", "2", "--seed", "1", "--schedules", "2", "--resume", ckpt]);
    assert_eq!(code(&resumed), 0);
    assert_eq!(stdout(&resumed), summary, "resumed == uninterrupted");
}
