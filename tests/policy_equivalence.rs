//! Differential property test for the coherence-policy refactor.
//!
//! The memory system's per-protocol behaviour moved from one enum
//! `match` into [`CoherencePolicy`] trait objects; the pre-refactor
//! monolith is retained verbatim as
//! [`reference::EnumMemorySystem`]. For the paper's two protocols the
//! swap must be invisible — identical completion cycle for every
//! access, identical [`ProtoStats`], NoC/energy counters, and an
//! identical structured trace event stream — on any access sequence.
//! This test holds it to that on randomly generated workloads.
//!
//! (MESI-WB is intentionally absent: it is new with the trait seam,
//! and the reference rejects it at construction.)
//!
//! Uses the repo-local deterministic generator ([`rng`]) instead of an
//! external property-testing crate so the whole workspace builds with
//! zero network dependencies. Every case is derived from a fixed seed,
//! so failures reproduce bit-for-bit.

mod rng;

use drfrlx::sim::coherence::{reference, AccessKind, MemSysParams, MemorySystem};
use drfrlx::sim::trace::SharedTracer;
use drfrlx::Protocol;
use rng::SplitMix64;

const KINDS: [AccessKind; 5] = [
    AccessKind::DataLoad,
    AccessKind::DataStore,
    AccessKind::AtomicLoad,
    AccessKind::AtomicStore,
    AccessKind::AtomicRmw,
];

/// One step of a generated workload tape.
#[derive(Debug, Clone, Copy)]
enum Step {
    Load(usize, u64, AccessKind),
    Store(usize, u64, AccessKind),
    Rmw(usize, u64),
    Acquire(usize),
    Release(usize),
    /// Let simulated time advance past all in-flight activity.
    Advance(u64),
}

/// A random access tape: mostly clustered on a few hot lines (so
/// ownership bounces, MSHRs coalesce and store buffers fill), with a
/// cold-address tail for evictions and DRAM refills.
fn random_tape(r: &mut SplitMix64, num_cus: usize, len: usize) -> Vec<Step> {
    let hot: Vec<u64> = (0..4).map(|_| r.below(1 << 20)).collect();
    (0..len)
        .map(|_| {
            let cu = r.below(num_cus as u64) as usize;
            let addr = if r.below(4) == 0 { r.below(1 << 20) } else { hot[r.below(4) as usize] };
            let kind = KINDS[r.below(KINDS.len() as u64) as usize];
            match r.below(12) {
                0..=3 => Step::Load(cu, addr, kind),
                4..=7 => Step::Store(cu, addr, kind),
                8..=9 => Step::Rmw(cu, addr),
                10 => {
                    if r.below(2) == 0 {
                        Step::Acquire(cu)
                    } else {
                        Step::Release(cu)
                    }
                }
                _ => Step::Advance(r.below(400)),
            }
        })
        .collect()
}

/// Replay `tape` on one memory system through its public timing API;
/// `now` advances with every completion so later accesses observe
/// earlier ones. Returns the per-step completion cycles.
macro_rules! replay {
    ($sys:expr, $tape:expr) => {{
        let sys = &mut $sys;
        let mut now: u64 = 0;
        let mut completions = Vec::with_capacity($tape.len());
        for step in $tape {
            let done = match *step {
                Step::Load(cu, addr, kind) => sys.load(now, cu, addr, kind),
                Step::Store(cu, addr, kind) => sys.store(now, cu, addr, kind),
                Step::Rmw(cu, addr) => sys.rmw(now, cu, addr),
                Step::Acquire(cu) => sys.acquire(now, cu),
                Step::Release(cu) => sys.release(now, cu),
                Step::Advance(by) => now + by,
            };
            // Interleave: half the steps issue back-to-back at `now`,
            // the others wait for completion (done parity is a cheap
            // deterministic coin that both systems see identically
            // only if their timing already agrees).
            if done % 2 == 0 {
                now = now.max(done);
            }
            completions.push(done);
        }
        completions
    }};
}

#[test]
fn trait_dispatch_matches_enum_reference() {
    let mut r = SplitMix64::new(0xC0_FFEE_D15C);
    for case in 0..40u64 {
        let protocol = if case % 2 == 0 { Protocol::Gpu } else { Protocol::DeNovo };
        let params = MemSysParams::default();
        let num_cus = params.num_cus;
        let len = 120 + r.below(120) as usize;
        let tape = random_tape(&mut r, num_cus, len);

        let trait_tracer = SharedTracer::with_capacity(1 << 14);
        let mut sys = MemorySystem::with_tracer(protocol, params.clone(), trait_tracer.clone());
        let enum_tracer = SharedTracer::with_capacity(1 << 14);
        let mut reference =
            reference::EnumMemorySystem::with_tracer(protocol, params, enum_tracer.clone());

        let got = replay!(sys, &tape);
        let want = replay!(reference, &tape);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g, w, "case {case} ({protocol}): step {i} ({:?}) completion", tape[i]);
        }
        assert_eq!(sys.stats(), reference.stats(), "case {case} ({protocol}): ProtoStats");
        assert_eq!(
            sys.noc_stats(),
            reference.noc_stats(),
            "case {case} ({protocol}): NoC counters"
        );
        assert_eq!(
            sys.energy_events(),
            reference.energy_events(),
            "case {case} ({protocol}): energy event counters"
        );
        let (trait_buf, enum_buf) = (trait_tracer.into_buffer(), enum_tracer.into_buffer());
        let trait_events: Vec<_> = trait_buf.events().collect();
        let enum_events: Vec<_> = enum_buf.events().collect();
        assert_eq!(trait_events, enum_events, "case {case} ({protocol}): trace event streams");
        assert_eq!(trait_buf, enum_buf, "case {case} ({protocol}): trace totals");
    }
}

#[test]
fn stats_survive_a_long_contended_run() {
    // One long tape per protocol instead of many short ones: saturates
    // MSHRs/store buffers so the retry paths (`MshrOutcome::Full`)
    // execute in both implementations.
    let mut r = SplitMix64::new(0x05EE_D0F5_7A75_u64);
    for protocol in [Protocol::Gpu, Protocol::DeNovo] {
        let params = MemSysParams::default();
        let tape = random_tape(&mut r, params.num_cus, 4000);
        let mut sys = MemorySystem::new(protocol, params.clone());
        let mut reference = reference::EnumMemorySystem::new(protocol, params);
        let got = replay!(sys, &tape);
        let want = replay!(reference, &tape);
        assert_eq!(got, want, "{protocol}: completion streams");
        assert_eq!(sys.stats(), reference.stats(), "{protocol}: ProtoStats");
        // The run must have exercised the interesting machinery.
        let s = sys.stats();
        assert!(s.l1_misses > 0 && s.sb_flushes > 0 && s.invalidation_events > 0);
    }
}
