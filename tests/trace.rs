//! The tracing subsystem, end to end: a traced run never perturbs the
//! simulation, event streams are deterministic, per-kind totals agree
//! with the protocol statistics, the Chrome export is valid JSON, and
//! the GD0-vs-DD0 diff reproduces the paper's Table 4 story.

use drfrlx::bench::json::{parse_json, Json};
use drfrlx::sim::trace::{chrome_trace, Component, EventKind, TraceBuffer};
use drfrlx::sim::{
    run_matrix, run_workload, run_workload_traced, RunReport, SimJob, SysParams, SystemConfig,
};
use drfrlx::workloads::all_workloads;
use std::sync::Arc;

fn spec(name: &str) -> drfrlx::workloads::WorkloadSpec {
    all_workloads().into_iter().find(|s| s.name == name).unwrap_or_else(|| panic!("no {name}"))
}

fn traced(workload: &str, config: &str, capacity: usize) -> RunReport {
    let s = spec(workload);
    let kernel = s.kernel();
    let cfg = SystemConfig::from_abbrev(config).expect("config");
    let r = run_workload_traced(kernel.as_ref(), cfg, &SysParams::integrated(), capacity);
    kernel.validate(&r.memory).expect("functional check");
    r
}

/// Tracing must be an observer: the traced run's timing, statistics
/// and memory image are identical to the untraced run.
#[test]
fn traced_run_equals_untraced_run() {
    for config in ["GD0", "DDR"] {
        let s = spec("HG");
        let kernel = s.kernel();
        let cfg = SystemConfig::from_abbrev(config).unwrap();
        let params = SysParams::integrated();
        let plain = run_workload(kernel.as_ref(), cfg, &params);
        let traced = run_workload_traced(kernel.as_ref(), cfg, &params, 4096);
        assert_eq!(plain.cycles, traced.cycles, "{config}: cycles diverged");
        assert_eq!(plain.counters, traced.counters, "{config}: energy counters diverged");
        assert_eq!(plain.proto, traced.proto, "{config}: protocol stats diverged");
        assert_eq!(plain.memory, traced.memory, "{config}: memory image diverged");
        assert!(plain.trace.is_none());
        assert!(traced.trace.is_some());
    }
}

/// Two traced runs of the same job produce identical event streams.
#[test]
fn traced_runs_are_deterministic() {
    let a = traced("HG", "DD0", 8192);
    let b = traced("HG", "DD0", 8192);
    assert_eq!(a.trace, b.trace, "event streams differ between identical runs");
}

/// Per-kind event totals are exact (ring overflow only drops event
/// *records*), so they must equal the protocol/engine statistics.
#[test]
fn event_totals_match_statistics() {
    for config in ["GD0", "DD0", "DDR"] {
        let r = traced("HG", config, 64); // tiny ring: totals must survive wrap
        let buf = r.trace.as_ref().unwrap();
        let count = |k: EventKind| buf.totals(k).count;
        assert_eq!(count(EventKind::Invalidate), r.proto.invalidation_events, "{config}");
        assert_eq!(
            buf.totals(EventKind::Invalidate).arg_sum,
            r.proto.lines_invalidated,
            "{config}"
        );
        assert_eq!(count(EventKind::SbFlush), r.proto.sb_flushes, "{config}");
        assert_eq!(count(EventKind::L1Hit), r.proto.l1_hits, "{config}");
        assert_eq!(count(EventKind::L1Miss), r.proto.l1_misses, "{config}");
        assert_eq!(count(EventKind::MshrCoalesce), r.proto.mshr_coalesced, "{config}");
        assert_eq!(count(EventKind::AtomicAtL1), r.proto.atomics_at_l1, "{config}");
        assert_eq!(count(EventKind::AtomicAtL2), r.proto.atomics_at_l2, "{config}");
        assert_eq!(count(EventKind::AtomicReuse), r.proto.atomic_l1_reuse, "{config}");
        assert_eq!(count(EventKind::OwnershipTransfer), r.proto.remote_l1_transfers, "{config}");
        assert_eq!(count(EventKind::Writeback), r.proto.writebacks, "{config}");
        assert_eq!(count(EventKind::DramRefill), r.proto.dram_refills, "{config}");
        assert_eq!(count(EventKind::AtomicOverlap), r.atomics_overlapped, "{config}");
        assert!(buf.len() <= 64);
        assert_eq!(buf.recorded(), buf.len() as u64 + buf.dropped());
    }
}

/// The Chrome export is one valid JSON document with per-component
/// process metadata and one complete ("X") event per retained record.
#[test]
fn chrome_export_is_valid_json() {
    let r = traced("HG", "GD0", 2048);
    let buf = r.trace.as_ref().unwrap();
    let doc = parse_json(&chrome_trace(buf, "HG GD0")).expect("chrome trace parses");

    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let other = doc.get("otherData").expect("otherData");
    assert_eq!(other.get("label").and_then(Json::as_str), Some("HG GD0"));
    assert_eq!(other.get("unit").and_then(Json::as_str), Some("cycles"));
    assert_eq!(other.get("recorded").and_then(Json::as_num), Some(buf.recorded() as f64));

    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let phase = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap_or("").to_string();
    let metadata = events.iter().filter(|e| phase(e) == "M").count();
    let complete = events.iter().filter(|e| phase(e) == "X").count();
    let expected = Component::ALL.len() + usize::from(buf.dropped() > 0);
    assert_eq!(metadata, expected, "process_name per component, plus dropped_events if saturated");
    assert_eq!(complete, buf.len(), "one X event per retained record");
    for e in events.iter().filter(|e| phase(e) == "X") {
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ts").and_then(Json::as_num).is_some());
        assert!(e.get("dur").and_then(Json::as_num).is_some());
        assert!(e.get("pid").and_then(Json::as_num).is_some());
        assert!(e.get("tid").and_then(Json::as_num).is_some());
    }
}

/// Table 4 through the diff lens: on the same workload, GPU coherence
/// under DRF0 performs every atomic at the L2, while DeNovo under DRF0
/// performs them at the L1 (with ownership transfers and MSHR
/// coalescing) and needs fewer L2 round trips — with identical
/// invalidation *event* counts (both are DRF0).
#[test]
fn diff_reproduces_protocol_placement_story() {
    let gd0 = traced("HG", "GD0", 256);
    let dd0 = traced("HG", "DD0", 256);
    let g = gd0.trace.as_ref().unwrap();
    let d = dd0.trace.as_ref().unwrap();

    assert!(g.totals(EventKind::AtomicAtL2).count > 0, "GD0 performs atomics at L2");
    assert_eq!(g.totals(EventKind::AtomicAtL1).count, 0);
    assert!(d.totals(EventKind::AtomicAtL1).count > 0, "DD0 performs atomics at L1");
    assert_eq!(d.totals(EventKind::AtomicAtL2).count, 0);
    assert!(d.totals(EventKind::OwnershipTransfer).count > 0, "DD0 transfers ownership");
    assert!(d.totals(EventKind::MshrCoalesce).count > 0, "DD0 coalesces atomics in MSHRs");
    // Both are DRF0: every paired acquire invalidates.
    assert_eq!(
        g.totals(EventKind::Invalidate).count,
        d.totals(EventKind::Invalidate).count,
        "same model, same invalidation events"
    );
    // Ownership keeps atomics local: fewer L2 accesses and NoC hops.
    let l2 = |b: &TraceBuffer| b.totals(EventKind::L2Access).count;
    let hops = |b: &TraceBuffer| b.totals(EventKind::NocHop).count;
    assert!(l2(d) < l2(g), "DD0 L2 accesses {} !< GD0 {}", l2(d), l2(g));
    assert!(hops(d) < hops(g), "DD0 NoC hops {} !< GD0 {}", hops(d), hops(g));
}

/// Traced jobs ride the sweep engine: `SimJob::traced` produces a
/// buffer per report, and parallel sweeps return the same buffers as
/// serial ones (in job order).
#[test]
fn run_matrix_carries_traces_deterministically() {
    let s = spec("SC");
    let kernel: Arc<dyn drfrlx::sim::gpu::Kernel> = Arc::from(s.kernel());
    let params = SysParams::integrated();
    let jobs: Vec<SimJob> = ["GD0", "DD0"]
        .iter()
        .map(|c| {
            SimJob::new("SC", Arc::clone(&kernel), SystemConfig::from_abbrev(c).unwrap(), &params)
                .traced(1024)
        })
        .collect();
    let serial = run_matrix(&jobs, 1);
    let parallel = run_matrix(&jobs, 2);
    assert_eq!(serial.len(), 2);
    for (a, b) in serial.iter().zip(&parallel) {
        assert!(a.trace.is_some(), "traced job carries a buffer");
        assert_eq!(a.trace, b.trace, "parallel sweep changed the event stream");
        assert_eq!(a.cycles, b.cycles);
    }
}

/// The full Table 4 payload story needs a benchmark with real data
/// reuse: on BC-1, DeNovo's registered lines survive acquires, so DD0
/// drops far fewer lines than GD0. Release-mode only (`--ignored`).
#[test]
#[ignore = "slow in debug builds; run with --release -- --ignored"]
fn bc1_dd0_invalidates_fewer_lines_than_gd0() {
    let gd0 = traced("BC-1", "GD0", 256);
    let dd0 = traced("BC-1", "DD0", 256);
    let g = gd0.trace.as_ref().unwrap().totals(EventKind::Invalidate);
    let d = dd0.trace.as_ref().unwrap().totals(EventKind::Invalidate);
    assert_eq!(g.count, d.count, "same model, same acquire count");
    assert!(d.arg_sum < g.arg_sum, "DD0 should drop fewer lines: {} !< {}", d.arg_sum, g.arg_sum);
}
