//! End-to-end integration: every workload family runs on all six
//! configurations, produces functionally correct results, and shows
//! the paper's first-order trends.

use drfrlx::sim::gpu::Kernel;
use drfrlx::sim::{run_matrix, run_workload, six_config_jobs, SysParams};
use drfrlx::workloads::micro::{
    Flags, Hist, HistGlobal, HistGlobalNonOrder, HistParams, RefCounter, Seqlocks, SplitCounter,
};
use drfrlx::workloads::{bc::Bc, graphs, pagerank::PageRank, uts::Uts};
use drfrlx::SystemConfig;
use std::sync::Arc;

fn check_all(k: impl Kernel + 'static) -> Vec<drfrlx::sim::RunReport> {
    let params = SysParams::integrated();
    let kernel: Arc<dyn Kernel> = Arc::new(k);
    let jobs = six_config_jobs(&kernel.name(), Arc::clone(&kernel), &params, false);
    let reports = run_matrix(&jobs, 1);
    for r in &reports {
        kernel
            .validate(&r.memory)
            .unwrap_or_else(|e| panic!("{} invalid under {}: {e}", kernel.name(), r.config));
    }
    reports
}

#[test]
fn histograms_run_everywhere() {
    let p = HistParams { bins: 32, per_thread: 16, blocks: 6, tpb: 4, seed: 5 };
    check_all(Hist::new(p.clone()));
    check_all(HistGlobal::new(p.clone(), drfrlx::OpClass::Commutative));
    check_all(HistGlobalNonOrder::new(HistParams { bins: 256, ..p }));
}

#[test]
fn counters_and_seqlocks_run_everywhere() {
    check_all(SplitCounter::new(4, 6, 16, 2));
    check_all(RefCounter::new(4, 4, 8, 6));
    check_all(Seqlocks::new(false, 4, 4, 3, 4, 4, 32));
    check_all(Flags::new(4, 4, 16, 300));
}

#[test]
fn benchmarks_run_everywhere() {
    check_all(Uts::scaled(96, 5, 4));
    check_all(Bc::new(graphs::mesh_like("t", 8, 6), 5, 4));
    check_all(PageRank::new(graphs::contact_like("t", 96, 3, 5), 2, 5, 4));
}

#[test]
fn weaker_models_never_lose_badly_and_functionality_is_model_independent() {
    // The paper's contract: relaxing the model changes *timing*, never
    // results; and on atomic-heavy code the weaker model wins.
    let k = HistGlobal::new(
        HistParams { bins: 64, per_thread: 32, blocks: 8, tpb: 8, seed: 9 },
        drfrlx::OpClass::Commutative,
    );
    let r = check_all(k);
    let (gd0, gd1, gdr, dd0, dd1, ddr) = (&r[0], &r[1], &r[2], &r[3], &r[4], &r[5]);
    assert!(gd1.cycles <= gd0.cycles);
    assert!(gdr.cycles <= gd1.cycles);
    assert!(dd1.cycles <= dd0.cycles);
    assert!(ddr.cycles <= dd1.cycles);
    for pair in r.windows(2) {
        assert_eq!(pair[0].memory, pair[1].memory, "results are model-independent");
    }
}

#[test]
fn drf1_restores_data_reuse_on_pagerank() {
    let pr = PageRank::new(graphs::mesh_like("t", 16, 12), 2, 8, 8);
    let params = SysParams::integrated();
    let gd0 = run_workload(&pr, SystemConfig::from_abbrev("GD0").unwrap(), &params);
    let gd1 = run_workload(&pr, SystemConfig::from_abbrev("GD1").unwrap(), &params);
    assert!(gd1.cycles < gd0.cycles, "GD1 {} !< GD0 {}", gd1.cycles, gd0.cycles);
    assert!(gd1.proto.invalidation_events < gd0.proto.invalidation_events);
    let hit = |r: &drfrlx::sim::RunReport| {
        r.proto.l1_hits as f64 / (r.proto.l1_hits + r.proto.l1_misses) as f64
    };
    assert!(hit(&gd1) > hit(&gd0), "unpaired atomics stop destroying the L1");
}

#[test]
fn drfrlx_overlaps_atomics_only_under_drfrlx() {
    let k = HistGlobal::new(
        HistParams { bins: 32, per_thread: 16, blocks: 6, tpb: 6, seed: 2 },
        drfrlx::OpClass::Commutative,
    );
    let params = SysParams::integrated();
    for cfg in SystemConfig::all() {
        let r = run_workload(&k, cfg, &params);
        if cfg.model == drfrlx::MemoryModel::Drfrlx {
            assert!(r.atomics_overlapped > 0, "{cfg} must overlap");
        } else {
            assert_eq!(r.atomics_overlapped, 0, "{cfg} must not overlap");
        }
    }
}

#[test]
fn denovo_places_atomics_at_l1_gpu_at_l2() {
    let k = SplitCounter::new(4, 6, 8, 1);
    let params = SysParams::integrated();
    let g = run_workload(&k, SystemConfig::from_abbrev("GD0").unwrap(), &params);
    let d = run_workload(&k, SystemConfig::from_abbrev("DD0").unwrap(), &params);
    assert!(g.proto.atomics_at_l2 > 0 && g.proto.atomics_at_l1 == 0);
    assert!(d.proto.atomics_at_l1 > 0 && d.proto.atomics_at_l2 == 0);
    assert!(d.proto.atomic_l1_reuse > 0, "DeNovo reuses registered atomics");
}

#[test]
fn discrete_platform_amplifies_sc_atomic_cost() {
    let k = HistGlobal::new(
        HistParams { bins: 32, per_thread: 16, blocks: 6, tpb: 6, seed: 4 },
        drfrlx::OpClass::Commutative,
    );
    let gd0 = SystemConfig::from_abbrev("GD0").unwrap();
    let gdr = SystemConfig::from_abbrev("GDR").unwrap();
    let speedup = |p: &SysParams| {
        let sc = run_workload(&k, gd0, p);
        let rlx = run_workload(&k, gdr, p);
        sc.cycles as f64 / rlx.cycles as f64
    };
    let integrated = speedup(&SysParams::integrated());
    let discrete = speedup(&SysParams::discrete_gpu());
    assert!(
        discrete > integrated,
        "Figure 1 premise: relaxed atomics matter more on discrete GPUs \
         ({discrete:.2}x vs {integrated:.2}x)"
    );
}
